#include "switchd/switch.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace sdnbuf::sw {

const char* buffer_mode_name(BufferMode mode) {
  switch (mode) {
    case BufferMode::NoBuffer: return "no-buffer";
    case BufferMode::PacketGranularity: return "packet-granularity";
    case BufferMode::FlowGranularity: return "flow-granularity";
  }
  return "?";
}

const char* fail_mode_name(ConnectionFailMode mode) {
  switch (mode) {
    case ConnectionFailMode::FailSecure: return "fail-secure";
    case ConnectionFailMode::FailStandalone: return "fail-standalone";
  }
  return "?";
}

const char* port_down_policy_name(PortDownPolicy policy) {
  switch (policy) {
    case PortDownPolicy::RePktIn: return "re-pktin";
    case PortDownPolicy::Drop: return "drop";
    case PortDownPolicy::HoldUntilRecovery: return "hold";
  }
  return "?";
}

Switch::Switch(sim::Simulator& sim, SwitchConfig config, std::uint64_t rng_seed)
    : sim_(sim),
      config_(std::move(config)),
      rng_(rng_seed),
      cpu_(sim, config_.name + ":cpu", config_.cpu_cores),
      bus_(sim, config_.name + ":bus", 1),
      table_(config_.flow_table_capacity, config_.eviction_policy, rng_seed * 31 + 17) {
  if (config_.mmu.enabled) {
    mmu_ = std::make_unique<mmu::SharedMemoryMmu>(sim_, config_.mmu, config_.name);
  }
  if (config_.buffer_mode == BufferMode::PacketGranularity) {
    packet_buffer_ = std::make_unique<PacketBufferManager>(sim_, config_.buffer_capacity,
                                                           config_.costs.buffer_reclaim_delay);
    if (mmu_ != nullptr) {
      packet_buffer_->attach_mmu(*mmu_, mmu_->register_queue(mmu::QueueKind::OfBuffer, 0, 0,
                                                             config_.buffer_capacity));
    }
  } else if (config_.buffer_mode == BufferMode::FlowGranularity) {
    flow_buffer_ = std::make_unique<FlowBufferManager>(sim_, config_.buffer_capacity,
                                                       config_.costs.buffer_reclaim_delay);
    if (mmu_ != nullptr) {
      flow_buffer_->attach_mmu(*mmu_, mmu_->register_queue(mmu::QueueKind::OfBuffer, 0, 0,
                                                           config_.buffer_capacity));
    }
  }
}

void Switch::attach_port(std::uint16_t port_no, net::Link& egress, DeliverFn deliver) {
  SDNBUF_CHECK_MSG(ports_.count(port_no) == 0, "port already attached");
  SDNBUF_CHECK_MSG(port_no != 0 && port_no < of::kPortMax, "invalid port number");
  Port port;
  port.egress = &egress;
  port.deliver = std::move(deliver);
  port.scheduler =
      std::make_unique<EgressScheduler>(sim_, config_.egress, egress, port.deliver);
  if (mmu_ != nullptr) port.scheduler->attach_mmu(*mmu_, port_no);
  // Frames the link's fault schedule eats after dequeue are this switch's
  // loss to account: without this the payload would vanish from the
  // conservation ledger.
  port.scheduler->set_drop_handler([this](const net::Packet& packet, const char* where) {
    ++counters_.link_dropped;
    ++counters_.packets_dropped;
    if (observer_ != nullptr) observer_->on_packet_dropped(packet, where, sim_.now());
  });
  ports_.emplace(port_no, std::move(port));
}

EgressScheduler& Switch::port_scheduler(std::uint16_t port_no) {
  const auto it = ports_.find(port_no);
  SDNBUF_CHECK_MSG(it != ports_.end(), "unknown port");
  return *it->second.scheduler;
}

void Switch::set_invariant_observer(verify::InvariantObserver* observer) {
  observer_ = observer;
  if (packet_buffer_ != nullptr) packet_buffer_->set_observer(observer);
  if (flow_buffer_ != nullptr) flow_buffer_->set_observer(observer);
  if (mmu_ != nullptr) mmu_->set_observer(observer);
}

void Switch::set_buffer_instruments(const obs::BufferInstruments& instruments) {
  if (packet_buffer_ != nullptr) packet_buffer_->set_instruments(instruments);
  if (flow_buffer_ != nullptr) flow_buffer_->set_instruments(instruments);
}

void Switch::connect(of::Channel& channel) {
  channel_ = &channel;
  channel.set_switch_handler(
      [this](const of::OfMessage& msg, std::size_t) { on_control_message(msg); });
}

void Switch::start() {
  sweep_event_ = sim_.schedule(config_.sweep_interval, [this]() {
    sim::ScopedProfileTag tag{config_.name.c_str()};
    sweep();
  });
  if (config_.echo_interval > sim::SimTime::zero()) {
    echo_event_ = sim_.schedule(config_.echo_interval, [this]() {
      sim::ScopedProfileTag tag{config_.name.c_str()};
      echo_tick();
    });
  }
}

void Switch::stop() {
  running_ = false;
  sweep_event_.cancel();
  echo_event_.cancel();
}

sim::SimTime Switch::cost_us(double nominal_us) {
  return sim::SimTime::from_microseconds(nominal_us *
                                         rng_.lognormal(1.0, config_.costs.jitter_sigma));
}

sim::SimTime Switch::bus_time(std::size_t bytes) const {
  return sim::transmission_time(bytes, config_.costs.bus_bandwidth_bps);
}

void Switch::receive(std::uint16_t in_port, net::Packet packet) {
  ++counters_.packets_received;
  if (crashed_) {
    // A dead switch forwards nothing; the frame dies at the ingress pipeline.
    ++counters_.crash_dropped;
    ++counters_.packets_dropped;
    if (observer_ != nullptr) observer_->on_packet_dropped(packet, "switch-crashed", sim_.now());
    return;
  }
  ++packet.hops;
  if (packet.hops > config_.max_hops) {
    // The frame has visited more switches than any loop-free path allows:
    // it is circulating in a transient repair loop. Retire it here instead
    // of letting it refresh the looped rules' idle timers forever.
    ++counters_.hop_limit_dropped;
    ++counters_.packets_dropped;
    if (observer_ != nullptr) observer_->on_packet_dropped(packet, "hop-limit", sim_.now());
    return;
  }
  if (const auto it = ports_.find(in_port); it != ports_.end()) {
    ++it->second.rx_packets;
    it->second.rx_bytes += packet.frame_size;
  }
  if (recorder_ != nullptr) recorder_->on_first_packet_arrival(packet.flow_id, sim_.now());
  // Telemetry hooks, both inert (one integer compare) when disabled.
  if (config_.telemetry_int_depth != 0) packet.hop_arrived_at = sim_.now();
  if (config_.telemetry_sample_period != 0) maybe_sample(in_port, packet);

  // ASIC match stage: a fixed-latency hardware pipeline — deterministic, so
  // simultaneously arriving packets keep their arrival order.
  sim_.schedule(sim::SimTime::from_microseconds(config_.costs.asic_match_us),
                [this, in_port, packet]() {
    sim::ScopedProfileTag tag{config_.name.c_str()};
    FlowEntry* entry = table_.lookup(packet, in_port, sim_.now());
    if (entry != nullptr) {
      ++counters_.table_hits;
      execute_actions(packet, entry->actions, in_port);
    } else {
      ++counters_.table_misses;
      handle_miss(in_port, packet);
    }
  });
}

void Switch::handle_miss(std::uint16_t in_port, const net::Packet& packet) {
  if (conn_state_ != ConnectionState::Connected) {
    handle_miss_degraded(in_port, packet);
    return;
  }
  switch (config_.buffer_mode) {
    case BufferMode::NoBuffer:
      miss_no_buffer(in_port, packet, /*buffer_exhausted=*/false);
      break;
    case BufferMode::PacketGranularity:
      miss_packet_granularity(in_port, packet);
      break;
    case BufferMode::FlowGranularity:
      miss_flow_granularity(in_port, packet);
      break;
  }
}

void Switch::handle_miss_degraded(std::uint16_t in_port, const net::Packet& packet) {
  if (config_.fail_mode == ConnectionFailMode::FailStandalone) {
    // Standalone fallback: forward without the controller. Flooding is the
    // L2 baseline a standalone learning switch degenerates to.
    ++counters_.standalone_forwarded;
    flood(packet, in_port);
    return;
  }
  ++counters_.failsecure_dropped;
  ++counters_.packets_dropped;
  if (observer_ != nullptr) observer_->on_packet_dropped(packet, "fail-secure", sim_.now());
}

void Switch::miss_no_buffer(std::uint16_t in_port, const net::Packet& packet,
                            bool buffer_exhausted) {
  ++counters_.full_frame_pkt_ins;
  if (buffer_exhausted) {
    SDNBUF_DEBUG("switch", "buffer exhausted, full-frame packet_in for flow "
                               << packet.flow_key().to_string());
  }
  // The whole frame crosses the ASIC<->CPU bus, then the CPU builds a
  // packet_in that carries the entire frame.
  bus_.submit(bus_time(packet.frame_size), [this, in_port, packet]() {
    const double encode_us = config_.costs.miss_base_us + config_.costs.pkt_in_base_us +
                             config_.costs.pkt_in_per_byte_us * packet.frame_size;
    cpu_.submit(cost_us(encode_us), [this, in_port, packet]() {
      send_packet_in(packet, in_port, of::kNoBuffer, packet.frame_size,
                     of::PacketInReason::NoMatch);
    });
  });
}

void Switch::miss_packet_granularity(std::uint16_t in_port, const net::Packet& packet) {
  SDNBUF_CHECK(packet_buffer_ != nullptr);
  const auto buffer_id = packet_buffer_->store(packet);
  if (!buffer_id) {
    // OpenFlow fallback: no free unit, send the entire frame.
    miss_no_buffer(in_port, packet, /*buffer_exhausted=*/true);
    return;
  }
  const std::size_t data_bytes = std::min<std::size_t>(config_.miss_send_len, packet.frame_size);
  // Only the captured headers cross the bus.
  bus_.submit(bus_time(data_bytes), [this, in_port, packet, id = *buffer_id, data_bytes]() {
    const double encode_us = config_.costs.miss_base_us + config_.costs.buffer_store_us +
                             config_.costs.pkt_in_base_us +
                             config_.costs.pkt_in_per_byte_us * static_cast<double>(data_bytes);
    cpu_.submit(cost_us(encode_us), [this, in_port, packet, id, data_bytes]() {
      send_packet_in(packet, in_port, id, data_bytes, of::PacketInReason::NoMatch);
    });
  });
}

void Switch::miss_flow_granularity(std::uint16_t in_port, const net::Packet& packet) {
  SDNBUF_CHECK(flow_buffer_ != nullptr);
  const auto stored = flow_buffer_->store(packet, in_port);
  if (!stored) {
    miss_no_buffer(in_port, packet, /*buffer_exhausted=*/true);
    return;
  }
  if (stored->first_of_flow) {
    // Algorithm 1, lines 7-9: buffer, create the shared buffer_id, request.
    const std::size_t data_bytes =
        std::min<std::size_t>(config_.miss_send_len, packet.frame_size);
    bus_.submit(bus_time(data_bytes),
                [this, in_port, packet, id = stored->buffer_id, data_bytes]() {
      const double encode_us = config_.costs.miss_base_us + config_.costs.flow_map_lookup_us +
                               config_.costs.flow_map_store_us +
                               config_.costs.flow_first_packet_extra_us +
                               config_.costs.buffer_store_us + config_.costs.pkt_in_base_us +
                               config_.costs.pkt_in_per_byte_us * static_cast<double>(data_bytes);
      cpu_.submit(cost_us(encode_us), [this, in_port, packet, id, data_bytes]() {
        send_packet_in(packet, in_port, id, data_bytes, of::PacketInReason::NoMatch);
        flow_buffer_->mark_request_sent(id, sim_.now());
        schedule_flow_resend_check(id, in_port);
      });
    });
  } else {
    // Algorithm 1, lines 10-11: buffer silently; only the map lookup and the
    // store cost the CPU, nothing is sent.
    cpu_.submit(cost_us(config_.costs.flow_map_lookup_us + config_.costs.buffer_store_us),
                nullptr);
  }
}

sim::SimTime Switch::resend_timeout_for(unsigned resends) const {
  sim::SimTime timeout = config_.costs.flow_resend_timeout;
  for (unsigned i = 0; i < resends; ++i) {
    timeout = timeout.scaled(config_.costs.flow_resend_backoff);
    if (timeout >= config_.costs.flow_resend_timeout_cap) {
      return config_.costs.flow_resend_timeout_cap;
    }
  }
  return timeout;
}

void Switch::schedule_flow_resend_check(std::uint32_t buffer_id, std::uint16_t in_port) {
  sim_.schedule(resend_timeout_for(flow_buffer_->resend_count(buffer_id)),
                [this, buffer_id, in_port]() {
    sim::ScopedProfileTag tag{config_.name.c_str()};
    if (!running_) return;
    // While degraded the re-request protocol pauses; complete_reconnect()
    // restarts it for every still-live unit.
    if (conn_state_ != ConnectionState::Connected) return;
    const net::Packet* front = flow_buffer_ ? flow_buffer_->front_packet(buffer_id) : nullptr;
    if (front == nullptr) return;  // released in the meantime — no resend
    const unsigned resends = flow_buffer_->resend_count(buffer_id);
    const sim::SimTime timeout = resend_timeout_for(resends);
    const auto last = flow_buffer_->last_request_at(buffer_id);
    if (last && sim_.now() - *last < timeout) {
      schedule_flow_resend_check(buffer_id, in_port);
      return;
    }
    if (resends >= config_.costs.max_flow_resends) {
      // Algorithm 1's recovery has been exhausted: give the unit up and
      // account its packets instead of probing a silent controller forever.
      ++counters_.resend_cap_expired;
      counters_.buffered_packets_expired += flow_buffer_->expire_unit(buffer_id);
      ++counters_.buffer_units_expired;
      return;
    }
    // Algorithm 1, lines 12-13: the controller went silent; ask again.
    ++counters_.resend_pkt_ins;
    flow_buffer_->record_resend(buffer_id);
    const std::size_t data_bytes = std::min<std::size_t>(config_.miss_send_len, front->frame_size);
    const net::Packet packet = *front;
    const double encode_us = config_.costs.pkt_in_base_us +
                             config_.costs.pkt_in_per_byte_us * static_cast<double>(data_bytes);
    cpu_.submit(cost_us(encode_us), [this, in_port, packet, buffer_id, data_bytes]() {
      if (flow_buffer_->front_packet(buffer_id) == nullptr) return;
      if (conn_state_ != ConnectionState::Connected) return;
      send_packet_in(packet, in_port, buffer_id, data_bytes, of::PacketInReason::FlowResend);
      flow_buffer_->mark_request_sent(buffer_id, sim_.now());
      schedule_flow_resend_check(buffer_id, in_port);
    });
  });
}

void Switch::echo_tick() {
  if (!running_) return;
  if (outstanding_echo_xid_) {
    // Previous probe is still unanswered — that is one miss.
    ++echo_misses_;
    if (conn_state_ == ConnectionState::Connected &&
        echo_misses_ >= config_.echo_miss_threshold) {
      enter_degraded();
    }
  }
  SDNBUF_CHECK_MSG(channel_ != nullptr, "liveness requires a connected channel");
  of::EchoRequest probe{channel_->next_xid()};
  outstanding_echo_xid_ = probe.xid;
  ++counters_.echo_requests_sent;
  channel_->send_from_switch(probe);
  echo_event_ = sim_.schedule(config_.echo_interval, [this]() {
    sim::ScopedProfileTag tag{config_.name.c_str()};
    echo_tick();
  });
}

void Switch::enter_degraded() {
  ++counters_.connection_losses;
  conn_state_ = ConnectionState::Degraded;
  SDNBUF_DEBUG("switch", "controller declared lost after " << echo_misses_
                             << " echo misses; degrading to "
                             << fail_mode_name(config_.fail_mode));
  if (config_.fail_mode == ConnectionFailMode::FailSecure) {
    // Nothing will ever release these units while the controller is gone,
    // and fail-secure buffers no new misses: expire everything now.
    if (packet_buffer_ != nullptr) {
      counters_.buffer_units_expired += packet_buffer_->units_in_use();
      counters_.buffered_packets_expired += packet_buffer_->expire_all();
    }
    if (flow_buffer_ != nullptr) {
      counters_.buffer_units_expired += flow_buffer_->units_in_use();
      counters_.buffered_packets_expired += flow_buffer_->expire_all();
    }
  }
  // Fail-standalone keeps the buffered units: the connection may come back
  // before buffer_expiry, and reconciliation can then recover them.
}

void Switch::begin_reconnect() {
  conn_state_ = ConnectionState::Reconnecting;
  of::Hello hello{channel_->next_xid()};
  pending_hello_xid_ = hello.xid;
  channel_->send_from_switch(hello);
}

void Switch::complete_reconnect() {
  conn_state_ = ConnectionState::Connected;
  echo_misses_ = 0;
  pending_hello_xid_.reset();
  ++counters_.reconnects;
  last_restored_at_ = sim_.now();
  // Reconcile buffer state stranded by the outage.
  if (flow_buffer_ != nullptr) {
    // Flow-granularity units are recoverable: re-request each live unit so
    // the controller can install the rule and release the whole flow.
    for (const std::uint32_t id : flow_buffer_->live_unit_ids()) {
      const net::Packet* front = flow_buffer_->front_packet(id);
      if (front == nullptr) continue;
      flow_buffer_->reset_request_state(id);
      ++counters_.reconcile_rerequests;
      const std::uint16_t in_port = flow_buffer_->in_port_of(id);
      const std::size_t data_bytes =
          std::min<std::size_t>(config_.miss_send_len, front->frame_size);
      const net::Packet packet = *front;
      const double encode_us =
          config_.costs.pkt_in_base_us +
          config_.costs.pkt_in_per_byte_us * static_cast<double>(data_bytes);
      cpu_.submit(cost_us(encode_us), [this, in_port, packet, id, data_bytes]() {
        if (flow_buffer_->front_packet(id) == nullptr) return;
        if (conn_state_ != ConnectionState::Connected) return;
        send_packet_in(packet, in_port, id, data_bytes, of::PacketInReason::FlowResend);
        flow_buffer_->mark_request_sent(id, sim_.now());
        schedule_flow_resend_check(id, in_port);
      });
    }
  }
  if (packet_buffer_ != nullptr) {
    // Packet-granularity units are orphans: the controller's packet_outs for
    // them were lost in the outage and it will never re-issue one for an
    // unknown buffer_id. Expire them instead of leaking until the sweep.
    counters_.buffer_units_expired += packet_buffer_->units_in_use();
    const std::size_t orphans = packet_buffer_->expire_all();
    counters_.reconcile_expired += orphans;
    counters_.buffered_packets_expired += orphans;
  }
}

void Switch::send_packet_in(const net::Packet& packet, std::uint16_t in_port,
                            std::uint32_t buffer_id, std::size_t data_bytes,
                            of::PacketInReason reason) {
  SDNBUF_CHECK_MSG(channel_ != nullptr, "switch is not connected to a controller");
  of::PacketIn msg;
  msg.xid = channel_->next_xid();
  msg.buffer_id = buffer_id;
  msg.total_len = static_cast<std::uint16_t>(packet.frame_size);
  msg.in_port = in_port;
  msg.reason = reason;
  packet.serialize_into(data_bytes, msg.data);
  if (instr_.pkt_in_bytes != nullptr) {
    instr_.pkt_in_bytes->record(static_cast<double>(data_bytes));
  }
  pending_requests_[msg.xid] =
      PendingRequest{packet.flow_id, packet.seq_in_flow, packet.created_at, packet.tstack,
                     packet.hop_arrived_at};
  ++counters_.pkt_ins_sent;
  if (observer_ != nullptr) observer_->on_packet_in_sent(msg.xid, packet, buffer_id, sim_.now());
  channel_->send_from_switch(msg);
  if (recorder_ != nullptr) recorder_->on_packet_in_sent(packet.flow_id, sim_.now());
}

std::uint64_t Switch::flow_id_for_xid(std::uint32_t xid) const {
  const auto* pending = pending_for_xid(xid);
  return pending == nullptr ? metrics::kUntrackedFlow : pending->flow_id;
}

const Switch::PendingRequest* Switch::pending_for_xid(std::uint32_t xid) const {
  const auto it = pending_requests_.find(xid);
  return it == pending_requests_.end() ? nullptr : &it->second;
}

void Switch::on_control_message(const of::OfMessage& msg) {
  if (crashed_) return;  // a dead switch consumes nothing
  if (const auto* fm = std::get_if<of::FlowMod>(&msg)) {
    if (recorder_ != nullptr) {
      recorder_->on_response_arrival(flow_id_for_xid(fm->xid), sim_.now());
    }
    handle_flow_mod(*fm);
  } else if (const auto* po = std::get_if<of::PacketOut>(&msg)) {
    if (recorder_ != nullptr) {
      recorder_->on_response_arrival(flow_id_for_xid(po->xid), sim_.now());
    }
    handle_packet_out(*po);
  } else if (const auto* echo = std::get_if<of::EchoRequest>(&msg)) {
    channel_->send_from_switch(of::EchoReply{echo->xid});
  } else if (const auto* reply = std::get_if<of::EchoReply>(&msg)) {
    ++counters_.echo_replies_received;
    if (outstanding_echo_xid_ && reply->xid == *outstanding_echo_xid_) {
      outstanding_echo_xid_.reset();
      echo_misses_ = 0;
    }
    // Any echo reply proves the channel is alive again; start the hello
    // re-handshake (idempotent while one is already pending).
    if (conn_state_ == ConnectionState::Degraded) {
      begin_reconnect();
    }
  } else if (const auto* feats = std::get_if<of::FeaturesRequest>(&msg)) {
    of::FeaturesReply reply;
    reply.xid = feats->xid;
    reply.datapath_id = config_.datapath_id;
    reply.n_buffers = config_.buffer_mode == BufferMode::NoBuffer
                          ? 0
                          : static_cast<std::uint32_t>(config_.buffer_capacity);
    reply.n_tables = 1;
    for (const auto& [port_no, port] : ports_) {
      reply.ports.push_back(port_desc(port_no, port));
    }
    channel_->send_from_switch(reply);
  } else if (const auto* fs = std::get_if<of::FlowStatsRequest>(&msg)) {
    handle_flow_stats(*fs);
  } else if (const auto* as = std::get_if<of::AggregateStatsRequest>(&msg)) {
    handle_aggregate_stats(*as);
  } else if (const auto* ps = std::get_if<of::PortStatsRequest>(&msg)) {
    handle_port_stats(*ps);
  } else if (const auto* barrier = std::get_if<of::BarrierRequest>(&msg)) {
    // Barrier semantics: previous messages are already processed in program
    // order (the channel is FIFO), so replying directly is faithful.
    channel_->send_from_switch(of::BarrierReply{barrier->xid});
  } else if (const auto* hello = std::get_if<of::Hello>(&msg)) {
    // The controller echoes our hello xid back to complete a re-handshake;
    // unsolicited hellos (initial handshake) need no reply from us.
    if (pending_hello_xid_ && hello->xid == *pending_hello_xid_ &&
        conn_state_ == ConnectionState::Reconnecting) {
      complete_reconnect();
    }
  }
}

void Switch::handle_flow_mod(const of::FlowMod& msg) {
  ++counters_.flow_mods_handled;
  cpu_.submit(cost_us(config_.costs.flow_mod_install_us), [this, msg]() {
    switch (msg.command) {
      case of::FlowModCommand::Add:
      case of::FlowModCommand::Modify:
      case of::FlowModCommand::ModifyStrict: {
        FlowEntry entry;
        entry.match = msg.match;
        entry.priority = msg.priority;
        entry.actions = msg.actions;
        entry.cookie = msg.cookie;
        entry.idle_timeout_s = msg.idle_timeout_s;
        entry.hard_timeout_s = msg.hard_timeout_s;
        entry.flags = msg.flags;
        auto result = table_.add(std::move(entry), sim_.now());
        for (const auto& evicted : result.evicted) emit_flow_removed(evicted);
        break;
      }
      case of::FlowModCommand::Delete:
      case of::FlowModCommand::DeleteStrict: {
        const bool strict = msg.command == of::FlowModCommand::DeleteStrict;
        auto removed = table_.remove(msg.match,
                                     strict ? std::optional<std::uint16_t>{msg.priority}
                                            : std::nullopt,
                                     strict);
        for (const auto& r : removed) emit_flow_removed(r);
        break;
      }
    }
    // flow_mod may also name a buffered packet to which the new actions
    // apply (the OpenFlow one-message variant of install-and-release).
    if (msg.buffer_id != of::kNoBuffer) {
      of::PacketOut synthetic;
      synthetic.xid = msg.xid;
      synthetic.buffer_id = msg.buffer_id;
      synthetic.in_port = msg.match.in_port;
      synthetic.actions = msg.actions;
      handle_packet_out(synthetic);
    }
  });
}

void Switch::handle_packet_out(const of::PacketOut& msg) {
  ++counters_.pkt_outs_handled;
  const double exec_us = config_.costs.pkt_out_base_us +
                         config_.costs.pkt_out_per_byte_us * static_cast<double>(msg.data.size());
  cpu_.submit(cost_us(exec_us), [this, msg]() {
    if (msg.buffer_id == of::kNoBuffer) {
      // The frame travels in the message; it must cross the bus to reach
      // the ASIC before egress.
      auto parsed = net::Packet::parse(msg.data, static_cast<std::uint32_t>(msg.data.size()));
      if (!parsed) {
        ++counters_.packets_dropped;
        return;
      }
      // Wire bytes carry no simulator metadata; restore it from the pending
      // request this packet_out answers.
      if (const auto* pending = pending_for_xid(msg.xid); pending != nullptr) {
        parsed->flow_id = pending->flow_id;
        parsed->seq_in_flow = pending->seq_in_flow;
        parsed->created_at = pending->created_at;
        parsed->tstack = pending->tstack;
        parsed->hop_arrived_at = pending->hop_arrived_at;
      }
      bus_.submit(bus_time(msg.data.size()), [this, packet = *parsed, msg]() {
        execute_actions(packet, msg.actions, msg.in_port);
      });
      return;
    }

    if (config_.buffer_mode == BufferMode::PacketGranularity) {
      SDNBUF_CHECK(packet_buffer_ != nullptr);
      auto packet = packet_buffer_->release(msg.buffer_id);
      if (!packet) {
        report_unknown_buffer(msg);
        return;
      }
      sim_.schedule(cost_us(config_.costs.buffer_release_us), [this, packet = *packet, msg]() {
        sim::ScopedProfileTag tag{config_.name.c_str()};
        execute_actions(packet, msg.actions, msg.in_port);
      });
    } else if (config_.buffer_mode == BufferMode::FlowGranularity) {
      SDNBUF_CHECK(flow_buffer_ != nullptr);
      auto packets = flow_buffer_->release_all(msg.buffer_id);
      if (packets.empty()) {
        report_unknown_buffer(msg);
        return;
      }
      // Algorithm 2, lines 4-9: forward the buffered packets one by one,
      // each paying its release cost.
      sim::SimTime offset;
      for (const auto& packet : packets) {
        offset += cost_us(config_.costs.buffer_release_us);
        sim_.schedule(offset, [this, packet, msg]() {
          sim::ScopedProfileTag tag{config_.name.c_str()};
          execute_actions(packet, msg.actions, msg.in_port);
        });
      }
    } else {
      report_unknown_buffer(msg);
    }
  });
}

void Switch::report_unknown_buffer(const of::PacketOut& msg) {
  ++counters_.unknown_buffer_releases;
  if (channel_ == nullptr) return;
  // OFPET_BAD_REQUEST / OFPBRC_BUFFER_UNKNOWN with the offending message's
  // first bytes, per the specification.
  of::Error err;
  err.xid = msg.xid;
  err.type = of::ErrorType::BadRequest;
  err.code = of::ErrorCode::BufferUnknown;
  auto offending = of::encode_message(msg);
  offending.resize(std::min<std::size_t>(offending.size(), 64));
  err.data = std::move(offending);
  channel_->send_from_switch(err);
}

void Switch::execute_actions(const net::Packet& packet, const of::ActionList& actions,
                             std::uint16_t in_port) {
  if (actions.empty()) {
    ++counters_.packets_dropped;
    if (observer_ != nullptr) observer_->on_packet_dropped(packet, "no-actions", sim_.now());
    return;
  }
  net::Packet current = packet;
  for (const auto& action : actions) {
    if (const auto* out = std::get_if<of::OutputAction>(&action)) {
      if (out->port == of::kPortFlood || out->port == of::kPortAll) {
        flood(current, in_port);
      } else if (out->port == of::kPortController) {
        send_packet_in(current, in_port, of::kNoBuffer,
                       out->max_len != 0 ? out->max_len : current.frame_size,
                       of::PacketInReason::Action);
      } else if (out->port == of::kPortInPort) {
        egress(current, in_port, in_port);
      } else {
        egress(current, out->port, in_port);
      }
    } else if (const auto* src = std::get_if<of::SetDlSrcAction>(&action)) {
      current.eth.src = src->mac;
    } else if (const auto* dst = std::get_if<of::SetDlDstAction>(&action)) {
      current.eth.dst = dst->mac;
    }
  }
}

void Switch::egress(const net::Packet& packet, std::uint16_t out_port, std::uint16_t in_port) {
  const auto it = ports_.find(out_port);
  if (it == ports_.end()) {
    ++counters_.packets_dropped;
    if (observer_ != nullptr) observer_->on_packet_dropped(packet, "unknown-port", sim_.now());
    SDNBUF_WARN("switch", "egress to unknown port " << out_port);
    return;
  }
  Port& port = it->second;
  if (!port.up) {
    handle_port_down_packet(port, packet, in_port);
    return;
  }
  if (config_.telemetry_int_depth != 0 && packet.tstack.size() < config_.telemetry_int_depth) {
    // INT stamping: one copy, one stamp, bounded by the configured depth.
    // The queue depth is read before this packet joins the backlog.
    net::Packet stamped = packet;
    net::HopStamp stamp;
    stamp.switch_id = config_.datapath_id;
    stamp.in_port = in_port;
    stamp.out_port = out_port;
    stamp.queue_depth = static_cast<std::uint32_t>(port.scheduler->total_backlog_packets());
    stamp.buffer_units = static_cast<std::uint32_t>(buffer_units_in_use());
    if (mmu_ != nullptr) {
      // Sharing dynamics at enqueue: pool occupancy and this queue's current
      // admission ceiling (both before the packet joins the backlog).
      stamp.pool_cells = static_cast<std::uint32_t>(mmu_->pool_cells_used());
      stamp.queue_threshold =
          static_cast<std::uint32_t>(port.scheduler->mmu_threshold_for(packet));
    }
    stamp.arrived_at = packet.hop_arrived_at;
    stamp.departed_at = sim_.now();
    stamped.tstack.push_back(stamp);
    ++counters_.int_stamps_applied;
    enqueue_egress(port, stamped);
    return;
  }
  enqueue_egress(port, packet);
}

void Switch::enqueue_egress(Port& port, const net::Packet& packet) {
  if (!port.scheduler->enqueue(packet)) {
    ++port.tx_dropped;
    ++counters_.packets_dropped;
    if (observer_ != nullptr) observer_->on_packet_dropped(packet, "egress-queue", sim_.now());
    return;
  }
  ++counters_.packets_forwarded;
  if (recorder_ != nullptr) recorder_->on_packet_departure(packet.flow_id, sim_.now());
  ++port.tx_packets;
  port.tx_bytes += packet.frame_size;
}

bool Switch::sample_hit(const net::Packet& packet) const {
  // splitmix64 finalizer over (flow hash, sequence, salt): deterministic for
  // a fixed salt, independent of arrival order, host, and shard layout.
  std::uint64_t h = packet.flow_key().hash() ^
                    (std::uint64_t{packet.seq_in_flow} * 0x9e3779b97f4a7c15ULL) ^
                    config_.telemetry_sample_salt;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h % config_.telemetry_sample_period == 0;
}

void Switch::maybe_sample(std::uint16_t in_port, const net::Packet& packet) {
  if (channel_ == nullptr || conn_state_ != ConnectionState::Connected) return;
  if (!sample_hit(packet)) return;
  // Build the record now (arrival context), pay the encode cost on the
  // shared switch CPU, then ship it — the same contention path packet_ins
  // take, which is what makes aggressive sampling measurably expensive.
  of::FlowSample record;
  const net::FlowKey key = packet.flow_key();
  record.src_ip = key.src_ip.value();
  record.dst_ip = key.dst_ip.value();
  record.src_port = key.src_port;
  record.dst_port = key.dst_port;
  record.protocol = key.protocol;
  record.in_port = in_port;
  record.frame_bytes = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(packet.frame_size, 0xffff));
  cpu_.submit(cost_us(config_.costs.sample_encode_us), [this, record]() mutable {
    if (channel_ == nullptr || conn_state_ != ConnectionState::Connected) return;
    record.xid = channel_->next_xid();
    record.sample_seq = static_cast<std::uint32_t>(counters_.flow_samples_sent);
    ++counters_.flow_samples_sent;
    channel_->send_from_switch(record);
  });
}

void Switch::flood(const net::Packet& packet, std::uint16_t in_port) {
  ++counters_.packets_flooded;
  bool sent = false;
  for (auto& [port_no, port] : ports_) {
    if (port_no == in_port) continue;
    if (!port.up) continue;  // a real switch never floods out a dead port
    sent = true;
    if (!port.scheduler->enqueue(packet)) {
      ++port.tx_dropped;
      ++counters_.packets_dropped;
      if (observer_ != nullptr) observer_->on_packet_dropped(packet, "flood-queue", sim_.now());
      continue;
    }
    if (recorder_ != nullptr) recorder_->on_packet_departure(packet.flow_id, sim_.now());
    ++counters_.packets_forwarded;
    ++port.tx_packets;
    port.tx_bytes += packet.frame_size;
  }
  if (!sent) {
    ++counters_.packets_dropped;
    if (observer_ != nullptr) observer_->on_packet_dropped(packet, "flood-no-ports", sim_.now());
  }
}

void Switch::handle_port_down_packet(Port& port, const net::Packet& packet,
                                     std::uint16_t in_port) {
  switch (config_.port_down_policy) {
    case PortDownPolicy::RePktIn:
      // The forwarding decision is stale; treat the packet as a fresh table
      // miss so the controller — which saw the port_status — answers with a
      // repaired route. Under flow granularity the re-misses of one flow
      // coalesce into a single buffer unit; under packet granularity each
      // consumes its own.
      ++counters_.port_down_repktin;
      handle_miss(in_port, packet);
      return;
    case PortDownPolicy::Drop:
      ++counters_.port_down_dropped;
      ++counters_.packets_dropped;
      if (observer_ != nullptr) observer_->on_packet_dropped(packet, "port-down", sim_.now());
      return;
    case PortDownPolicy::HoldUntilRecovery:
      ++counters_.port_down_held;
      port.held.push_back(HeldPacket{packet, in_port, sim_.now()});
      return;
  }
}

void Switch::set_port_state(std::uint16_t port_no, bool up) {
  const auto it = ports_.find(port_no);
  SDNBUF_CHECK_MSG(it != ports_.end(), "unknown port");
  Port& port = it->second;
  if (port.up == up) return;
  port.up = up;
  if (!crashed_) send_port_status(port_no, port, up);
  if (up && !port.held.empty()) {
    // Replay parked packets in arrival order through the normal egress path.
    std::deque<HeldPacket> held = std::move(port.held);
    port.held.clear();
    for (auto& h : held) {
      ++counters_.port_held_flushed;
      egress(h.packet, port_no, h.in_port);
    }
  }
}

bool Switch::port_up(std::uint16_t port_no) const {
  const auto it = ports_.find(port_no);
  SDNBUF_CHECK_MSG(it != ports_.end(), "unknown port");
  return it->second.up;
}

void Switch::send_port_status(std::uint16_t port_no, const Port& port, bool up) {
  if (channel_ == nullptr) return;
  of::PortStatus msg;
  msg.xid = channel_->next_xid();
  msg.reason = up ? of::PortStatusReason::Add : of::PortStatusReason::Delete;
  msg.desc = port_desc(port_no, port);
  ++counters_.port_status_sent;
  channel_->send_from_switch(msg);
}

of::PortDesc Switch::port_desc(std::uint16_t port_no, const Port& port) const {
  of::PortDesc desc;
  desc.port_no = port_no;
  desc.hw_addr = net::MacAddress::from_index(port_no);
  desc.name = "eth" + std::to_string(port_no);
  desc.curr_speed_mbps = static_cast<std::uint32_t>(port.egress->bandwidth_bps() / 1e6);
  desc.link_down = !port.up;
  return desc;
}

void Switch::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++counters_.crashes;
  // Volatile state dies with the process. Buffered units expire through the
  // managers so the invariant ledger records their packets as expired — no
  // unit leaks across the crash.
  if (packet_buffer_ != nullptr) {
    counters_.buffer_units_expired += packet_buffer_->units_in_use();
    counters_.buffered_packets_expired += packet_buffer_->expire_all();
  }
  if (flow_buffer_ != nullptr) {
    counters_.buffer_units_expired += flow_buffer_->units_in_use();
    counters_.buffered_packets_expired += flow_buffer_->expire_all();
  }
  for (auto& [port_no, port] : ports_) {
    (void)port_no;
    for (auto& h : port.held) {
      ++counters_.port_held_expired;
      ++counters_.packets_dropped;
      if (observer_ != nullptr) {
        observer_->on_packet_dropped(h.packet, "switch-crashed", sim_.now());
      }
    }
    port.held.clear();
  }
  // The flow table is RAM: gone. No flow_removed — a dead switch sends
  // nothing.
  table_.remove(of::Match::wildcard_all(), std::nullopt, /*strict=*/false);
  pending_requests_.clear();
  outstanding_echo_xid_.reset();
  pending_hello_xid_.reset();
  echo_misses_ = 0;
  echo_event_.cancel();
  conn_state_ = ConnectionState::Degraded;  // the control connection died too
}

void Switch::restart() {
  if (!crashed_) return;
  crashed_ = false;
  // Fresh process: rejoin through the hello re-handshake so the controller
  // purges its stale per-datapath bookkeeping and re-learns us.
  begin_reconnect();
  if (running_ && config_.echo_interval > sim::SimTime::zero()) {
    echo_event_ = sim_.schedule(config_.echo_interval, [this]() {
      sim::ScopedProfileTag tag{config_.name.c_str()};
      echo_tick();
    });
  }
}

void Switch::handle_flow_stats(const of::FlowStatsRequest& msg) {
  ++counters_.stats_requests_handled;
  const double service =
      config_.costs.stats_base_us + config_.costs.stats_per_entry_us * table_.size();
  cpu_.submit(cost_us(service), [this, msg]() {
    of::FlowStatsReply reply;
    reply.xid = msg.xid;
    for (const auto* entry : table_.entries()) {
      if (!msg.match.subsumes(entry->match)) continue;
      of::FlowStatsEntry e;
      e.match = entry->match;
      const sim::SimTime age = sim_.now() - entry->installed_at;
      e.duration_sec = static_cast<std::uint32_t>(age.sec());
      e.duration_nsec = static_cast<std::uint32_t>(age.ns() % 1'000'000'000);
      e.priority = entry->priority;
      e.idle_timeout_s = entry->idle_timeout_s;
      e.hard_timeout_s = entry->hard_timeout_s;
      e.cookie = entry->cookie;
      e.packet_count = entry->packet_count;
      e.byte_count = entry->byte_count;
      reply.flows.push_back(std::move(e));
    }
    channel_->send_from_switch(reply);
  });
}

void Switch::handle_aggregate_stats(const of::AggregateStatsRequest& msg) {
  ++counters_.stats_requests_handled;
  const double service =
      config_.costs.stats_base_us + config_.costs.stats_per_entry_us * table_.size();
  cpu_.submit(cost_us(service), [this, msg]() {
    of::AggregateStatsReply reply;
    reply.xid = msg.xid;
    for (const auto* entry : table_.entries()) {
      if (!msg.match.subsumes(entry->match)) continue;
      ++reply.flow_count;
      reply.packet_count += entry->packet_count;
      reply.byte_count += entry->byte_count;
    }
    channel_->send_from_switch(reply);
  });
}

void Switch::handle_port_stats(const of::PortStatsRequest& msg) {
  ++counters_.stats_requests_handled;
  const double service = config_.costs.stats_base_us +
                         config_.costs.stats_per_entry_us * static_cast<double>(ports_.size());
  cpu_.submit(cost_us(service), [this, msg]() {
    of::PortStatsReply reply;
    reply.xid = msg.xid;
    for (const auto& [port_no, port] : ports_) {
      if (msg.port_no != of::kPortNone && msg.port_no != port_no) continue;
      of::PortStatsEntry e;
      e.port_no = port_no;
      e.rx_packets = port.rx_packets;
      e.rx_bytes = port.rx_bytes;
      e.tx_packets = port.tx_packets;
      e.tx_bytes = port.tx_bytes;
      e.tx_dropped = port.tx_dropped;
      reply.ports.push_back(e);
    }
    channel_->send_from_switch(reply);
  });
}

void Switch::sweep() {
  for (const auto& removed : table_.expire(sim_.now())) emit_flow_removed(removed);
  const sim::SimTime cutoff = sim_.now() - config_.costs.buffer_expiry;
  if (cutoff > sim::SimTime::zero()) {
    if (packet_buffer_ != nullptr) {
      const std::size_t units_before = packet_buffer_->units_in_use();
      counters_.buffered_packets_expired += packet_buffer_->expire_older_than(cutoff);
      counters_.buffer_units_expired += units_before - packet_buffer_->units_in_use();
    }
    if (flow_buffer_ != nullptr) {
      const std::size_t units_before = flow_buffer_->units_in_use();
      counters_.buffered_packets_expired += flow_buffer_->expire_older_than(cutoff);
      counters_.buffer_units_expired += units_before - flow_buffer_->units_in_use();
    }
    // Packets parked by HoldUntilRecovery age out on the same clock as
    // buffered units: a port that stays down past buffer_expiry will not
    // deliver them anyway.
    for (auto& [port_no, port] : ports_) {
      (void)port_no;
      while (!port.held.empty() && port.held.front().held_at <= cutoff) {
        ++counters_.port_held_expired;
        ++counters_.packets_dropped;
        if (observer_ != nullptr) {
          observer_->on_packet_dropped(port.held.front().packet, "port-hold-expired", sim_.now());
        }
        port.held.pop_front();
      }
    }
  }
  if (running_) {
    sweep_event_ = sim_.schedule(config_.sweep_interval, [this]() {
      sim::ScopedProfileTag tag{config_.name.c_str()};
      sweep();
    });
  }
}

void Switch::emit_flow_removed(const RemovedEntry& removed) {
  const bool wants = (removed.entry.flags & of::kFlowModSendFlowRem) != 0;
  if (!wants && !config_.send_flow_removed) return;
  if (channel_ == nullptr) return;
  of::FlowRemoved msg;
  msg.xid = channel_->next_xid();
  msg.match = removed.entry.match;
  msg.cookie = removed.entry.cookie;
  msg.priority = removed.entry.priority;
  msg.reason = removed.reason;
  const sim::SimTime lifetime = sim_.now() - removed.entry.installed_at;
  msg.duration_sec = static_cast<std::uint32_t>(lifetime.sec());
  msg.duration_nsec = static_cast<std::uint32_t>(lifetime.ns() % 1'000'000'000);
  msg.idle_timeout_s = removed.entry.idle_timeout_s;
  msg.packet_count = removed.entry.packet_count;
  msg.byte_count = removed.entry.byte_count;
  ++counters_.flow_removed_sent;
  channel_->send_from_switch(msg);
}

void Switch::reset_counters() {
  counters_ = SwitchCounters{};
  // Per-port egress high-water marks re-base at the current backlog so a
  // measurement window that starts after warm-up reports its own bursts,
  // not the warm-up's.
  for (auto& [port_no, port] : ports_) {
    (void)port_no;
    port.scheduler->reset_highwater();
  }
  if (mmu_ != nullptr) mmu_->reset_counters();
}

std::size_t Switch::buffer_units_in_use() const {
  if (packet_buffer_ != nullptr) return packet_buffer_->units_in_use();
  if (flow_buffer_ != nullptr) return flow_buffer_->units_in_use();
  return 0;
}

const metrics::OccupancyTracker* Switch::buffer_occupancy() const {
  if (packet_buffer_ != nullptr) return &packet_buffer_->occupancy();
  if (flow_buffer_ != nullptr) return &flow_buffer_->occupancy();
  return nullptr;
}

}  // namespace sdnbuf::sw

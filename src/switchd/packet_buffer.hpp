// Packet-granularity buffer manager: the *default* OpenFlow buffer
// mechanism (§IV).
//
// Every buffered miss-match packet gets its own buffer_id; its packet_in
// carries only `miss_send_len` header bytes, and the matching packet_out
// (same buffer_id) releases exactly that packet. When no unit is free the
// switch falls back to putting the entire frame into the packet_in
// (buffer_id = OFP_NO_BUFFER), per the specification — that fallback is what
// makes an undersized buffer (buffer-16 in the paper) regress toward
// no-buffer behaviour at high rates.
//
// Released/expired units return to the free pool after a reclaim delay
// (deferred reclamation, see CostModel::buffer_reclaim_delay); occupancy
// counts stored + awaiting-reclaim units, which is what "buffer units used"
// means in Fig. 8.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "metrics/occupancy.hpp"
#include "net/packet.hpp"
#include "obs/instruments.hpp"
#include "sim/simulator.hpp"
#include "switchd/mmu/mmu.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::sw {

class PacketBufferManager {
 public:
  PacketBufferManager(sim::Simulator& sim, std::size_t capacity, sim::SimTime reclaim_delay);

  // Invariant-checking hook (may be null; set by Switch::set_invariant_observer).
  void set_observer(verify::InvariantObserver* observer) { observer_ = observer; }

  // Joins the switch's shared-memory MMU (DESIGN.md §16): stores charge one
  // native unit plus the frame's cells against `queue`, and the pool policy
  // replaces the flat capacity check. Attach before traffic starts.
  void attach_mmu(mmu::SharedMemoryMmu& mmu, mmu::SharedMemoryMmu::QueueHandle queue) {
    mmu_ = &mmu;
    mmu_queue_ = queue;
  }

  // Metrics instruments (default-null bundle = disabled).
  void set_instruments(const obs::BufferInstruments& instruments) { instr_ = instruments; }

  // Stores a miss-match packet; returns its buffer_id, or nullopt when the
  // buffer is exhausted.
  std::optional<std::uint32_t> store(const net::Packet& packet);

  // Removes and returns the packet for a packet_out's buffer_id; nullopt if
  // the id is unknown (already released or expired).
  std::optional<net::Packet> release(std::uint32_t buffer_id);

  [[nodiscard]] const net::Packet* peek(std::uint32_t buffer_id) const;

  // Drops packets stored at or before `cutoff`; returns how many.
  std::size_t expire_older_than(sim::SimTime cutoff);

  // Drops every buffered packet (fail-secure degradation, post-reconnect
  // orphan reconciliation); returns how many.
  std::size_t expire_all() { return expire_older_than(sim_.now()); }

  // Units currently charged against capacity (stored + awaiting reclaim).
  [[nodiscard]] std::size_t units_in_use() const { return units_in_use_; }
  [[nodiscard]] std::size_t packets_stored() const { return packets_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::uint64_t total_stored() const { return total_stored_; }
  [[nodiscard]] std::uint64_t total_released() const { return total_released_; }
  [[nodiscard]] std::uint64_t total_expired() const { return total_expired_; }
  [[nodiscard]] std::uint64_t rejected_full() const { return rejected_full_; }

  [[nodiscard]] metrics::OccupancyTracker& occupancy() { return occupancy_; }
  [[nodiscard]] const metrics::OccupancyTracker& occupancy() const { return occupancy_; }

 private:
  struct Stored {
    net::Packet packet;
    sim::SimTime stored_at;
  };

  std::uint32_t allocate_id();
  void free_unit();

  sim::Simulator& sim_;
  std::size_t capacity_;
  sim::SimTime reclaim_delay_;
  verify::InvariantObserver* observer_ = nullptr;
  obs::BufferInstruments instr_;
  mmu::SharedMemoryMmu* mmu_ = nullptr;
  mmu::SharedMemoryMmu::QueueHandle mmu_queue_ = mmu::SharedMemoryMmu::kNoQueue;
  std::size_t units_in_use_ = 0;
  std::uint32_t next_id_ = 1;
  std::unordered_map<std::uint32_t, Stored> packets_;
  metrics::OccupancyTracker occupancy_;
  std::uint64_t total_stored_ = 0;
  std::uint64_t total_released_ = 0;
  std::uint64_t total_expired_ = 0;
  std::uint64_t rejected_full_ = 0;
};

}  // namespace sdnbuf::sw

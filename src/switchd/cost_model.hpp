// Switch processing-cost model.
//
// All software-path latencies of the simulated switch in one place,
// calibrated so the testbed reproduces the paper's observed shapes (see
// DESIGN.md §5). Values are nominal; the switch multiplies each drawn cost
// by lognormal jitter so repetitions differ like real measurements do.
//
// Sanity anchor: one miss-match packet on the buffered path costs
// ~ miss_base + pkt_in encode + buffer store + flow_mod install + pkt_out
// exec + release ≈ 200 us of CPU across 4 cores — at 12.5 kpps (100 Mbps of
// 1000-byte frames, all misses) that is ~2.6 cores busy, matching the
// ~260% switch CPU the paper reports.
#pragma once

#include "sim/time.hpp"

namespace sdnbuf::sw {

struct CostModel {
  // Hardware match stage latency (applies to every received packet).
  double asic_match_us = 2.0;

  // Effective ASIC<->CPU bus bandwidth. Full-frame punts (no-buffer mode)
  // push ~2 frame-copies per miss through this; 1000-byte frames at
  // >= 70 Mbps oversubscribe it, producing the paper's no-buffer delay
  // blow-up (Figs. 5-7).
  double bus_bandwidth_bps = 140e6;

  // Software miss handling: classification + upcall dispatch.
  double miss_base_us = 60.0;

  // packet_in construction: fixed + per copied byte.
  double pkt_in_base_us = 40.0;
  double pkt_in_per_byte_us = 0.012;

  // Buffer operations (packet-granularity mechanism).
  double buffer_store_us = 12.0;
  double buffer_release_us = 10.0;  // per packet released

  // Extra work of the flow-granularity mechanism (Algorithm 1):
  // buffer_id map lookup on every miss, map insert for the first packet.
  double flow_map_lookup_us = 6.0;
  double flow_map_store_us = 8.0;
  // One-off cost of setting up the per-flow buffer state on the first
  // miss-match packet of a flow. The paper observes that its (unoptimized)
  // OVS extension "delays the generation of pkt_in messages", making the
  // proposed mechanism's flow setup slightly slower than the default one at
  // low rates (Fig. 12a); this constant models that implementation tax.
  double flow_first_packet_extra_us = 120.0;

  // Control operation execution.
  double flow_mod_install_us = 60.0;
  double pkt_out_base_us = 30.0;
  double pkt_out_per_byte_us = 0.008;  // for frame data carried in the message

  // Statistics collection (OFPST_* requests): fixed dispatch cost plus a
  // per-reported-entry cost (reading counters, serializing the entry).
  double stats_base_us = 25.0;
  double stats_per_entry_us = 1.0;

  // Encoding one telemetry flow-sample record (vendor message) on the
  // switch CPU — cheap, but at aggressive sampling periods it visibly
  // competes with miss handling for the same cores.
  double sample_encode_us = 8.0;

  // Lognormal jitter sigma applied to every drawn cost.
  double jitter_sigma = 0.15;

  // Buffered packets that never receive a packet_out are discarded after
  // this long (OpenFlow: buffered packets may be expired).
  sim::SimTime buffer_expiry = sim::SimTime::milliseconds(500);

  // Deferred reclamation: a released unit returns to the free pool this much
  // later (models OVS's lazy buffer reclamation; drives the occupancy
  // levels of Fig. 8 / Fig. 13).
  sim::SimTime buffer_reclaim_delay = sim::SimTime::milliseconds(4);

  // Flow-granularity re-request timeout (Algorithm 1, line 12). This is the
  // *initial* timeout; each further re-request multiplies it by
  // `flow_resend_backoff` up to `flow_resend_timeout_cap` (capped
  // exponential backoff, so a silent controller is probed ever more
  // gently instead of periodically forever).
  sim::SimTime flow_resend_timeout = sim::SimTime::milliseconds(20);
  double flow_resend_backoff = 2.0;
  sim::SimTime flow_resend_timeout_cap = sim::SimTime::milliseconds(160);
  // Re-requests per unit before the switch gives up and expires it (the
  // flow's packets are accounted as expired-in-buffer). With the defaults
  // the last probe goes out ~300 ms after the first request — inside the
  // 500 ms buffer_expiry, so the cap (not the sweep) decides the outcome.
  unsigned max_flow_resends = 4;
};

}  // namespace sdnbuf::sw

#include "switchd/flow_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdnbuf::sw {

const char* eviction_policy_name(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::Lru: return "lru";
    case EvictionPolicy::Fifo: return "fifo";
    case EvictionPolicy::Random: return "random";
  }
  return "?";
}

FlowTable::FlowTable(std::size_t capacity, EvictionPolicy policy, std::uint64_t rng_seed)
    : capacity_(capacity), policy_(policy), rng_(rng_seed) {
  SDNBUF_CHECK_MSG(capacity_ >= 1, "flow table needs capacity");
}

std::string FlowTable::exact_key(const of::Match& m) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(of::kMatchSize);
  m.encode(bytes);
  return std::string(bytes.begin(), bytes.end());
}

FlowEntry* FlowTable::lookup(const net::Packet& p, std::uint16_t in_port, sim::SimTime now) {
  ++lookups_;
  FlowEntry* best = nullptr;

  // Exact-match fast path: the key is the packet's own exact match.
  const auto exact = of::Match::exact_from(p, in_port);
  if (const auto it = exact_index_.find(exact_key(exact)); it != exact_index_.end()) {
    best = &*it->second;
  }

  // Wildcard entries can still win on priority.
  for (const auto& it : wildcard_entries_) {
    FlowEntry& e = *it;
    if (best && e.priority <= best->priority) continue;
    if (e.match.matches(p, in_port)) best = &e;
  }

  if (best != nullptr) {
    ++hits_;
    best->last_used = now;
    ++best->packet_count;
    best->byte_count += p.frame_size;
  }
  return best;
}

const FlowEntry* FlowTable::peek(const net::Packet& p, std::uint16_t in_port) const {
  const FlowEntry* best = nullptr;
  const auto exact = of::Match::exact_from(p, in_port);
  if (const auto it = exact_index_.find(exact_key(exact)); it != exact_index_.end()) {
    best = &*it->second;
  }
  for (const auto& it : wildcard_entries_) {
    const FlowEntry& e = *it;
    if (best && e.priority <= best->priority) continue;
    if (e.match.matches(p, in_port)) best = &e;
  }
  return best;
}

void FlowTable::unlink(EntryIt it) {
  if (is_exact(it->match)) {
    exact_index_.erase(exact_key(it->match));
  } else {
    const auto pos = std::find(wildcard_entries_.begin(), wildcard_entries_.end(), it);
    SDNBUF_CHECK(pos != wildcard_entries_.end());
    wildcard_entries_.erase(pos);
  }
}

RemovedEntry FlowTable::take(EntryIt it, of::FlowRemovedReason reason) {
  unlink(it);
  RemovedEntry removed{std::move(*it), reason};
  entries_.erase(it);
  return removed;
}

FlowTable::EntryIt FlowTable::find_victim() {
  SDNBUF_CHECK(!entries_.empty());
  switch (policy_) {
    case EvictionPolicy::Lru: {
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->last_used < victim->last_used) victim = it;
      }
      return victim;
    }
    case EvictionPolicy::Fifo: {
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->installed_at < victim->installed_at) victim = it;
      }
      return victim;
    }
    case EvictionPolicy::Random: {
      auto victim = entries_.begin();
      std::advance(victim, static_cast<std::ptrdiff_t>(rng_.next_below(entries_.size())));
      return victim;
    }
  }
  return entries_.begin();
}

FlowTable::AddResult FlowTable::add(FlowEntry entry, sim::SimTime now) {
  AddResult result;
  entry.installed_at = now;
  entry.last_used = now;

  // ADD overwrites an identical (match, priority) entry.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->match == entry.match && it->priority == entry.priority) {
      unlink(it);
      *it = std::move(entry);
      if (is_exact(it->match)) {
        exact_index_.emplace(exact_key(it->match), it);
      } else {
        wildcard_entries_.push_back(it);
      }
      result.replaced = true;
      return result;
    }
  }

  while (entries_.size() >= capacity_) {
    ++evictions_;
    result.evicted.push_back(take(find_victim(), of::FlowRemovedReason::Eviction));
  }

  entries_.push_back(std::move(entry));
  const auto it = std::prev(entries_.end());
  if (is_exact(it->match)) {
    exact_index_.emplace(exact_key(it->match), it);
  } else {
    wildcard_entries_.push_back(it);
  }
  return result;
}

std::vector<RemovedEntry> FlowTable::remove(const of::Match& match,
                                            std::optional<std::uint16_t> priority, bool strict) {
  std::vector<RemovedEntry> removed;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool hit = strict ? (it->match == match && (!priority || it->priority == *priority))
                            : match.subsumes(it->match);
    if (hit) {
      auto victim = it++;
      removed.push_back(take(victim, of::FlowRemovedReason::Delete));
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<RemovedEntry> FlowTable::expire(sim::SimTime now) {
  std::vector<RemovedEntry> removed;
  for (auto it = entries_.begin(); it != entries_.end();) {
    of::FlowRemovedReason reason{};
    bool expired = false;
    if (it->hard_timeout_s != 0 &&
        now - it->installed_at >= sim::SimTime::seconds(it->hard_timeout_s)) {
      expired = true;
      reason = of::FlowRemovedReason::HardTimeout;
    } else if (it->idle_timeout_s != 0 &&
               now - it->last_used >= sim::SimTime::seconds(it->idle_timeout_s)) {
      expired = true;
      reason = of::FlowRemovedReason::IdleTimeout;
    }
    if (expired) {
      auto victim = it++;
      removed.push_back(take(victim, reason));
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<const FlowEntry*> FlowTable::entries() const {
  std::vector<const FlowEntry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(&e);
  return out;
}

}  // namespace sdnbuf::sw

#include "switchd/flow_buffer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdnbuf::sw {

FlowBufferManager::FlowBufferManager(sim::Simulator& sim, std::size_t capacity,
                                     sim::SimTime reclaim_delay)
    : sim_(sim), capacity_(capacity), reclaim_delay_(reclaim_delay), occupancy_(sim.now()) {
  SDNBUF_CHECK_MSG(capacity_ >= 1, "buffer needs at least one unit");
}

std::uint32_t FlowBufferManager::derive_id(const net::FlowKey& key) const {
  // 31-bit truncation of the 5-tuple hash; never OFP_NO_BUFFER. Linear
  // probing resolves collisions with ids of other currently buffered flows.
  std::uint32_t id = static_cast<std::uint32_t>(key.hash()) & 0x7fffffff;
  while (true) {
    const auto it = id_to_flow_.find(id);
    if (it == id_to_flow_.end() || it->second == key) return id;
    id = (id + 1) & 0x7fffffff;
  }
}

std::optional<FlowBufferManager::StoreResult> FlowBufferManager::store(const net::Packet& packet,
                                                                       std::uint16_t in_port) {
  const net::FlowKey key = packet.flow_key();
  auto it = flows_.find(key);
  if (mmu_ != nullptr) {
    // Shared-pool admission: a new flow charges the buffer_id slot (native)
    // plus the frame's cells, a subsequent packet cells only. Rejections of
    // either kind fall back to the full-frame packet_in like the flat cap's.
    if (!mmu_->try_admit(mmu_queue_, it == flows_.end() ? 1 : 0, packet.frame_size)) {
      ++rejected_full_;
      return std::nullopt;
    }
  } else if (it == flows_.end() && units_in_use_ >= capacity_) {
    // A new flow needs a fresh buffer_id slot and none is free; packets of
    // already-buffered flows share their flow's existing slot.
    ++rejected_full_;
    return std::nullopt;
  }
  StoreResult result;
  if (it == flows_.end()) {
    // Algorithm 1, lines 6-9: first miss-match packet of the flow.
    FlowState state;
    state.buffer_id = derive_id(key);
    state.in_port = in_port;
    state.first_stored_at = sim_.now();
    result.first_of_flow = true;
    result.buffer_id = state.buffer_id;
    id_to_flow_.emplace(state.buffer_id, key);
    it = flows_.emplace(key, std::move(state)).first;
    ++units_in_use_;
    occupancy_.set(units_in_use_, sim_.now());
  } else {
    // Algorithm 1, lines 10-11: subsequent packet, no packet_in.
    result.buffer_id = it->second.buffer_id;
  }
  it->second.packets.push_back(packet);
  result.queued = it->second.packets.size();
  ++packets_buffered_;
  ++total_stored_;
  if (observer_ != nullptr) {
    observer_->on_buffer_store(result.buffer_id, packet, result.first_of_flow,
                               /*flow_granularity=*/true, sim_.now());
  }
  return result;
}

void FlowBufferManager::free_unit() {
  // One buffer_id slot returns to the pool after deferred reclamation; the
  // MMU's native charge follows the same schedule (the flow's packet cells
  // were released when the flow drained).
  sim_.schedule(reclaim_delay_, [this]() {
    sim::ScopedProfileTag tag{"buffer_reclaim"};
    SDNBUF_CHECK(units_in_use_ > 0);
    --units_in_use_;
    occupancy_.set(units_in_use_, sim_.now());
    if (mmu_ != nullptr) mmu_->release(mmu_queue_, 1, 0);
  });
}

std::vector<net::Packet> FlowBufferManager::release_all(std::uint32_t buffer_id) {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return {};
  const auto it = flows_.find(idit->second);
  SDNBUF_CHECK(it != flows_.end());
  std::vector<net::Packet> out(it->second.packets.begin(), it->second.packets.end());
  if (instr_.residency_ms != nullptr) {
    instr_.residency_ms->record((sim_.now() - it->second.first_stored_at).ms());
  }
  total_released_ += out.size();
  SDNBUF_CHECK(packets_buffered_ >= out.size());
  packets_buffered_ -= out.size();
  if (mmu_ != nullptr) {
    // Cells were charged per packet at store time, so release them the same
    // way — per-packet ceilings do not sum to the ceiling of the sum.
    for (const auto& packet : out) mmu_->release(mmu_queue_, 0, packet.frame_size);
  }
  free_unit();
  flows_.erase(it);
  id_to_flow_.erase(idit);
  if (observer_ != nullptr) {
    for (const auto& packet : out) observer_->on_buffer_release(buffer_id, packet, sim_.now());
    observer_->on_buffer_unit_retired(buffer_id, sim_.now());
  }
  return out;
}

std::optional<std::uint32_t> FlowBufferManager::buffer_id_of(const net::FlowKey& key) const {
  const auto it = flows_.find(key);
  if (it == flows_.end()) return std::nullopt;
  return it->second.buffer_id;
}

std::optional<sim::SimTime> FlowBufferManager::last_request_at(std::uint32_t buffer_id) const {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return std::nullopt;
  return flows_.at(idit->second).last_request_at;
}

void FlowBufferManager::mark_request_sent(std::uint32_t buffer_id, sim::SimTime when) {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return;
  flows_.at(idit->second).last_request_at = when;
}

const net::Packet* FlowBufferManager::front_packet(std::uint32_t buffer_id) const {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return nullptr;
  const auto& packets = flows_.at(idit->second).packets;
  return packets.empty() ? nullptr : &packets.front();
}

std::uint16_t FlowBufferManager::in_port_of(std::uint32_t buffer_id) const {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return 0;
  return flows_.at(idit->second).in_port;
}

unsigned FlowBufferManager::resend_count(std::uint32_t buffer_id) const {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return 0;
  return flows_.at(idit->second).resends;
}

void FlowBufferManager::record_resend(std::uint32_t buffer_id) {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return;
  ++flows_.at(idit->second).resends;
}

void FlowBufferManager::reset_request_state(std::uint32_t buffer_id) {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return;
  FlowState& state = flows_.at(idit->second);
  state.resends = 0;
  state.last_request_at.reset();
}

std::vector<std::uint32_t> FlowBufferManager::live_unit_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(flows_.size());
  for (const auto& [key, state] : flows_) ids.push_back(state.buffer_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t FlowBufferManager::expire_older_than(sim::SimTime cutoff) {
  std::vector<std::uint32_t> stale;
  for (const auto& [key, state] : flows_) {
    if (state.first_stored_at <= cutoff) stale.push_back(state.buffer_id);
  }
  std::sort(stale.begin(), stale.end());  // deterministic expiry order
  std::size_t dropped = 0;
  for (const std::uint32_t buffer_id : stale) dropped += expire_unit(buffer_id);
  return dropped;
}

std::size_t FlowBufferManager::expire_unit(std::uint32_t buffer_id) {
  const auto idit = id_to_flow_.find(buffer_id);
  if (idit == id_to_flow_.end()) return 0;
  const auto it = flows_.find(idit->second);
  SDNBUF_CHECK(it != flows_.end());
  if (observer_ != nullptr) {
    for (const auto& packet : it->second.packets) {
      observer_->on_buffer_expire(buffer_id, packet, sim_.now());
    }
  }
  const std::size_t dropped = it->second.packets.size();
  if (instr_.residency_ms != nullptr) {
    instr_.residency_ms->record((sim_.now() - it->second.first_stored_at).ms());
  }
  total_expired_ += dropped;
  SDNBUF_CHECK(packets_buffered_ >= dropped);
  packets_buffered_ -= dropped;
  if (mmu_ != nullptr) {
    for (const auto& packet : it->second.packets) {
      mmu_->release(mmu_queue_, 0, packet.frame_size);
    }
  }
  free_unit();
  flows_.erase(it);
  id_to_flow_.erase(idit);
  if (observer_ != nullptr) observer_->on_buffer_unit_retired(buffer_id, sim_.now());
  return dropped;
}

}  // namespace sdnbuf::sw

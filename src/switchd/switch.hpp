// The software OpenFlow switch (the testbed's Open vSwitch stand-in).
//
// Architecture mirrors a real software switch:
//
//   ingress -> ASIC match stage -> hit: egress at line rate
//                                \-> miss: [buffer] -> bus -> switch CPU ->
//                                    packet_in on the control channel
//   control channel -> switch CPU -> flow_mod install / packet_out execute
//                                    -> buffered-packet release -> egress
//
// Resources that the paper identifies as contended are explicit queueing
// stations: the multi-core switch CPU and the ASIC<->CPU bus (full-frame
// punts in no-buffer mode saturate the bus at high rates; header-only punts
// with buffering do not — the root cause of Figs. 5-7).
//
// The buffer behaviour is selected by `BufferMode`:
//   NoBuffer          entire frame in every packet_in (buffer disabled)
//   PacketGranularity OpenFlow default: one buffer_id per miss-match packet
//   FlowGranularity   the paper's proposal: one buffer_id and one packet_in
//                     per flow (Algorithms 1-2), with timeout re-request
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/delay_recorder.hpp"
#include "net/link.hpp"
#include "obs/instruments.hpp"
#include "net/packet.hpp"
#include "openflow/channel.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "switchd/cost_model.hpp"
#include "switchd/egress_scheduler.hpp"
#include "switchd/flow_buffer.hpp"
#include "switchd/flow_table.hpp"
#include "switchd/mmu/mmu.hpp"
#include "switchd/packet_buffer.hpp"
#include "util/rng.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::sw {

enum class BufferMode {
  NoBuffer,
  PacketGranularity,
  FlowGranularity,
};

[[nodiscard]] const char* buffer_mode_name(BufferMode mode);

// What the switch does with miss-match packets while the controller is lost
// (OpenFlow connection-interruption modes).
enum class ConnectionFailMode {
  // Drop packets destined to the controller; buffered units are expired at
  // degradation (nothing will ever release them while the controller is
  // gone and new misses are not buffered).
  FailSecure,
  // Act as a standalone (learning) switch: forward miss-match packets
  // without the controller — modeled as flooding, the L2 fallback.
  FailStandalone,
};

[[nodiscard]] const char* fail_mode_name(ConnectionFailMode mode);

// Fate of a packet whose egress port is down (data-plane fault plane,
// DESIGN.md §13). Applies wherever a forwarding decision lands on a dead
// port: installed-rule hits, packet_out releases, and buffered-unit
// releases alike.
enum class PortDownPolicy {
  // Treat the packet as a fresh table miss: re-buffer and re-ask the
  // controller, which (after the port_status) answers with a repaired
  // route. This is what converts a link failure into a re-miss storm whose
  // size depends on the buffer mechanism.
  RePktIn,
  // Drop with accounting ("port-down"), the hardware-switch default.
  Drop,
  // Park the packet beside the port and replay it in order when the port
  // comes back; parked packets expire on the housekeeping sweep like
  // buffered units do.
  HoldUntilRecovery,
};

[[nodiscard]] const char* port_down_policy_name(PortDownPolicy policy);

// Control-connection liveness state.
enum class ConnectionState {
  Connected,     // normal operation
  Degraded,      // echo miss threshold hit; fail_mode governs the datapath
  Reconnecting,  // liveness returned; hello re-handshake in flight
};

struct SwitchConfig {
  std::string name = "ovs";
  std::uint64_t datapath_id = 0x0000000000000001ULL;
  unsigned cpu_cores = 4;
  std::size_t flow_table_capacity = 4096;
  EvictionPolicy eviction_policy = EvictionPolicy::Lru;
  BufferMode buffer_mode = BufferMode::NoBuffer;
  std::size_t buffer_capacity = 256;
  std::uint16_t miss_send_len = of::kDefaultMissSendLen;
  // Emit flow_removed for expired/evicted rules even without the per-rule
  // flag (Floodlight sets the flag; we also allow forcing it).
  bool send_flow_removed = false;
  sim::SimTime sweep_interval = sim::SimTime::milliseconds(100);
  // OpenFlow-style liveness: every `echo_interval` the switch probes the
  // controller with an echo_request; after `echo_miss_threshold` unanswered
  // probes in a row it declares the controller lost and degrades into
  // `fail_mode`. zero interval disables liveness (the connection is assumed
  // healthy forever, as before the fault plane existed).
  sim::SimTime echo_interval = sim::SimTime::zero();
  unsigned echo_miss_threshold = 3;
  ConnectionFailMode fail_mode = ConnectionFailMode::FailSecure;
  // What happens to packets whose egress port is down (never triggers
  // without a fault schedule, so the default is inert in fault-free runs).
  PortDownPolicy port_down_policy = PortDownPolicy::RePktIn;
  // Per-packet hop budget (IP TTL analogue). Asynchronous route repair can
  // leave a transient forwarding loop between two rule generations; the
  // budget bounds how long a frame can circulate. Far above any real fabric
  // diameter, so it never fires on a loop-free path.
  unsigned max_hops = 64;
  CostModel costs;
  // Egress scheduling for every port (§VII future work). The default Fifo
  // policy is behaviourally identical to sending straight to the link.
  EgressSchedulerConfig egress;
  // --- In-fabric telemetry (DESIGN.md §15); both knobs default off, and an
  // off switch executes a bit-identical instruction stream. ---
  // INT-style per-hop stamping: append a net::HopStamp at egress while the
  // packet's stack holds fewer than this many entries (0 = no stamping).
  unsigned telemetry_int_depth = 0;
  // NetFlow-style 1-in-N deterministic packet sampling at ingress; sampled
  // records travel to the controller as of::FlowSample messages (0 = off).
  std::uint32_t telemetry_sample_period = 0;
  // Decorrelates the sampling hash across switches (same role as a sFlow
  // agent's seed); sampling stays deterministic for a fixed salt.
  std::uint64_t telemetry_sample_salt = 0;
  // Shared-memory MMU (DESIGN.md §16): one pool arbitrated across the
  // OpenFlow buffer and every egress class queue. Disabled by default — no
  // MMU is constructed and every consumer keeps its legacy flat cap, so the
  // datapath executes a bit-identical instruction stream.
  mmu::MmuConfig mmu;
};

struct SwitchCounters {
  std::uint64_t packets_received = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t packets_flooded = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  std::uint64_t pkt_ins_sent = 0;
  std::uint64_t full_frame_pkt_ins = 0;  // buffer disabled or exhausted
  std::uint64_t resend_pkt_ins = 0;      // Algorithm 1, line 13
  std::uint64_t flow_mods_handled = 0;
  std::uint64_t pkt_outs_handled = 0;
  std::uint64_t unknown_buffer_releases = 0;
  std::uint64_t buffered_packets_expired = 0;
  std::uint64_t buffer_units_expired = 0;  // units (not packets) those expiries retired
  std::uint64_t flow_removed_sent = 0;
  std::uint64_t stats_requests_handled = 0;
  // Liveness / degradation / recovery.
  std::uint64_t echo_requests_sent = 0;
  std::uint64_t echo_replies_received = 0;
  std::uint64_t connection_losses = 0;     // Connected -> Degraded transitions
  std::uint64_t reconnects = 0;            // hello re-handshakes completed
  std::uint64_t failsecure_dropped = 0;    // misses dropped while degraded
  std::uint64_t standalone_forwarded = 0;  // misses flooded while degraded
  std::uint64_t resend_cap_expired = 0;    // flow units expired at max_flow_resends
  std::uint64_t reconcile_rerequests = 0;  // flow units re-requested after reconnect
  std::uint64_t reconcile_expired = 0;     // packet units expired as orphans after reconnect
  // Data-plane fault plane.
  std::uint64_t port_status_sent = 0;      // port up/down notifications emitted
  std::uint64_t port_down_repktin = 0;     // packets re-missed off a dead port
  std::uint64_t port_down_dropped = 0;     // packets dropped at a dead port
  std::uint64_t port_down_held = 0;        // packets parked at a dead port
  std::uint64_t port_held_flushed = 0;     // parked packets replayed on recovery
  std::uint64_t port_held_expired = 0;     // parked packets expired by the sweep
  std::uint64_t link_dropped = 0;          // frames lost at the link after dequeue
  std::uint64_t crashes = 0;               // crash() calls
  std::uint64_t crash_dropped = 0;         // ingress frames dropped while crashed
  std::uint64_t hop_limit_dropped = 0;     // frames that exhausted max_hops
  // In-fabric telemetry.
  std::uint64_t flow_samples_sent = 0;     // of::FlowSample records emitted
  std::uint64_t int_stamps_applied = 0;    // HopStamps appended at egress
};

class Switch {
 public:
  using DeliverFn = std::function<void(const net::Packet&)>;

  Switch(sim::Simulator& sim, SwitchConfig config, std::uint64_t rng_seed);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // Attaches an egress link for a port; `deliver` fires at the far end of
  // the link with the forwarded packet.
  void attach_port(std::uint16_t port_no, net::Link& egress, DeliverFn deliver);

  // Binds the control channel (the switch side of it) and performs the
  // OpenFlow handshake (hello + features exchange happens lazily when the
  // controller asks).
  void connect(of::Channel& channel);

  // Starts housekeeping (flow-table and buffer expiry sweeps).
  void start();
  // Cancels housekeeping so Simulator::run() can drain.
  void stop();

  // Ingress entry point: a packet arrived on `in_port`.
  void receive(std::uint16_t in_port, net::Packet packet);

  // Data-plane fault plane (DESIGN.md §13). Marks a port up/down — driven
  // by the platform at the boundaries of the attached link's outage
  // windows. Going down emits of::PortStatus{Delete}; coming back emits
  // PortStatus{Add} and replays packets parked by HoldUntilRecovery.
  void set_port_state(std::uint16_t port_no, bool up);
  [[nodiscard]] bool port_up(std::uint16_t port_no) const;

  // Switch crash: all volatile state is lost — flow table, buffered units
  // (expired with accounting), parked packets, pending packet_in
  // bookkeeping — and every ingress frame is dropped until restart().
  void crash();
  // Restart after a crash: rejoins the controller through the hello
  // re-handshake machinery (the controller purges its per-datapath
  // bookkeeping when the hello arrives).
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

  // Metrics sink (owned by the experiment); may be null.
  void set_delay_recorder(metrics::DelayRecorder* recorder) { recorder_ = recorder; }

  // Invariant-checking observer (owned by the caller; may be null). Also
  // propagated to the buffer managers; install before traffic starts.
  void set_invariant_observer(verify::InvariantObserver* observer);

  // Metrics instruments (pointers owned by a MetricsRegistry; default-null
  // bundle = disabled). The buffer bundle is forwarded to whichever buffer
  // manager the mode instantiated.
  void set_instruments(const obs::SwitchInstruments& instruments) { instr_ = instruments; }
  void set_buffer_instruments(const obs::BufferInstruments& instruments);

  [[nodiscard]] sim::CpuServer& cpu() { return cpu_; }
  [[nodiscard]] sim::CpuServer& bus() { return bus_; }
  [[nodiscard]] FlowTable& flow_table() { return table_; }
  [[nodiscard]] PacketBufferManager* packet_buffer() { return packet_buffer_.get(); }
  [[nodiscard]] FlowBufferManager* flow_buffer() { return flow_buffer_.get(); }
  [[nodiscard]] const SwitchCounters& counters() const { return counters_; }
  [[nodiscard]] const SwitchConfig& config() const { return config_; }

  [[nodiscard]] ConnectionState connection_state() const { return conn_state_; }
  // When the last hello re-handshake completed (zero if never degraded).
  [[nodiscard]] sim::SimTime last_restored_at() const { return last_restored_at_; }

  // Units currently charged against the buffer, 0 in NoBuffer mode.
  [[nodiscard]] std::size_t buffer_units_in_use() const;
  [[nodiscard]] const metrics::OccupancyTracker* buffer_occupancy() const;

  // Per-port egress scheduler (valid after attach_port).
  [[nodiscard]] EgressScheduler& port_scheduler(std::uint16_t port_no);

  // The shared-memory MMU, null unless config.mmu.enabled.
  [[nodiscard]] mmu::SharedMemoryMmu* mmu() { return mmu_.get(); }
  [[nodiscard]] const mmu::SharedMemoryMmu* mmu() const { return mmu_.get(); }

  // Clears measurement statistics between experiment repetitions: message /
  // drop counters, per-port egress high-water marks, and the MMU's
  // admit/reject totals. Pure counter writes — never perturbs the run.
  void reset_counters();

 private:
  struct HeldPacket {
    net::Packet packet;
    std::uint16_t in_port = 0;
    sim::SimTime held_at;
  };

  struct Port {
    net::Link* egress = nullptr;
    DeliverFn deliver;
    std::unique_ptr<EgressScheduler> scheduler;
    bool up = true;
    // Packets parked by PortDownPolicy::HoldUntilRecovery.
    std::deque<HeldPacket> held;
    // Interface counters, reported via OFPST_PORT.
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t tx_dropped = 0;
  };

  // Draws a jittered service time from a nominal microsecond cost.
  [[nodiscard]] sim::SimTime cost_us(double nominal_us);
  [[nodiscard]] sim::SimTime bus_time(std::size_t bytes) const;

  void handle_miss(std::uint16_t in_port, const net::Packet& packet);
  void miss_no_buffer(std::uint16_t in_port, const net::Packet& packet, bool buffer_exhausted);
  void miss_packet_granularity(std::uint16_t in_port, const net::Packet& packet);
  void miss_flow_granularity(std::uint16_t in_port, const net::Packet& packet);

  void send_packet_in(const net::Packet& packet, std::uint16_t in_port, std::uint32_t buffer_id,
                      std::size_t data_bytes, of::PacketInReason reason);
  void schedule_flow_resend_check(std::uint32_t buffer_id, std::uint16_t in_port);
  // Backoff schedule: timeout * backoff^resends, capped.
  [[nodiscard]] sim::SimTime resend_timeout_for(unsigned resends) const;

  // Connection lifecycle (liveness probe tick, degradation, hello
  // re-handshake, stranded-buffer reconciliation).
  void echo_tick();
  void enter_degraded();
  void begin_reconnect();
  void complete_reconnect();
  void handle_miss_degraded(std::uint16_t in_port, const net::Packet& packet);

  void on_control_message(const of::OfMessage& msg);
  void handle_flow_mod(const of::FlowMod& msg);
  void handle_packet_out(const of::PacketOut& msg);
  void report_unknown_buffer(const of::PacketOut& msg);
  void handle_flow_stats(const of::FlowStatsRequest& msg);
  void handle_aggregate_stats(const of::AggregateStatsRequest& msg);
  void handle_port_stats(const of::PortStatsRequest& msg);
  void execute_actions(const net::Packet& packet, const of::ActionList& actions,
                       std::uint16_t in_port);
  void egress(const net::Packet& packet, std::uint16_t out_port, std::uint16_t in_port);
  // Tail of egress(): scheduler enqueue + forwarding accounting.
  void enqueue_egress(Port& port, const net::Packet& packet);
  void flood(const net::Packet& packet, std::uint16_t in_port);
  // Deterministic 1-in-N sampling decision (telemetry_sample_period != 0).
  [[nodiscard]] bool sample_hit(const net::Packet& packet) const;
  // Emits an of::FlowSample for `packet` if it falls in the sample.
  void maybe_sample(std::uint16_t in_port, const net::Packet& packet);
  // Fate policy entry point for a packet whose egress port is down.
  void handle_port_down_packet(Port& port, const net::Packet& packet, std::uint16_t in_port);
  void send_port_status(std::uint16_t port_no, const Port& port, bool up);
  [[nodiscard]] of::PortDesc port_desc(std::uint16_t port_no, const Port& port) const;

  void sweep();
  void emit_flow_removed(const RemovedEntry& removed);


  sim::Simulator& sim_;
  SwitchConfig config_;
  util::Rng rng_;
  sim::CpuServer cpu_;
  sim::CpuServer bus_;
  FlowTable table_;
  std::unique_ptr<mmu::SharedMemoryMmu> mmu_;
  std::unique_ptr<PacketBufferManager> packet_buffer_;
  std::unique_ptr<FlowBufferManager> flow_buffer_;
  std::unordered_map<std::uint16_t, Port> ports_;
  of::Channel* channel_ = nullptr;
  metrics::DelayRecorder* recorder_ = nullptr;
  verify::InvariantObserver* observer_ = nullptr;
  obs::SwitchInstruments instr_;
  SwitchCounters counters_;
  // packet_in xid -> original packet metadata, for attributing responses and
  // restoring simulator metadata on no-buffer packet_out frames.
  struct PendingRequest {
    std::uint64_t flow_id = metrics::kUntrackedFlow;
    std::uint32_t seq_in_flow = 0;
    sim::SimTime created_at;
    // INT state survives the controller round trip: no-buffer packet_out
    // frames are re-parsed from wire bytes, which carry no stamps.
    std::vector<net::HopStamp> tstack;
    sim::SimTime hop_arrived_at;
  };

  [[nodiscard]] std::uint64_t flow_id_for_xid(std::uint32_t xid) const;
  [[nodiscard]] const PendingRequest* pending_for_xid(std::uint32_t xid) const;

  std::unordered_map<std::uint32_t, PendingRequest> pending_requests_;
  sim::EventHandle sweep_event_;
  sim::EventHandle echo_event_;
  // Connection lifecycle state.
  ConnectionState conn_state_ = ConnectionState::Connected;
  unsigned echo_misses_ = 0;
  std::optional<std::uint32_t> outstanding_echo_xid_;
  std::optional<std::uint32_t> pending_hello_xid_;
  sim::SimTime last_restored_at_;
  // Cleared by stop(): silences housekeeping and the flow-granularity
  // resend timers so a drained simulator can terminate.
  bool running_ = true;
  // Set by crash(), cleared by restart(); gates the whole datapath.
  bool crashed_ = false;
};

}  // namespace sdnbuf::sw

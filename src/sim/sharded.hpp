// Sharded parallel discrete-event engine with conservative lookahead sync.
//
// A `ShardedSimulator` owns N independent `Simulator` shards and advances
// them in lockstep time windows. The safety argument is the classic
// conservative (bounded-lag) one: if every cross-shard interaction is
// carried by a link with propagation delay >= L (the engine's lookahead),
// then an event executing at time t on one shard can only affect another
// shard at t + L or later. So all shards may execute the window
// [floor, floor + L) in parallel without ever seeing a message from the
// past: a message sent during the window arrives at >= floor + L, i.e. in a
// future window.
//
// Cross-shard traffic travels through per-(from, to) mailboxes. During a
// window only shard `from`'s worker appends to the (from, to) mailbox and
// nobody reads it — single-producer/single-consumer by construction, with
// the window barrier standing in for the usual ring indices. At each window
// boundary the coordinator drains every mailbox in one deterministic order —
// sorted by (timestamp, from shard, to shard, per-pair sequence) — into the
// target shards' event queues.
//
// Determinism contract: at a fixed shard count the run is bit-identical
// across repeats and thread counts, because the threaded and sequential
// paths execute the identical algorithm (same windows, same drain order;
// threads only change which core executes a shard's window). Different
// shard counts produce the same physics (identical event timestamps) but
// may order equal-timestamp events differently, so cross-shard-count checks
// compare delivered multisets, not byte streams.
//
// With one shard the engine degenerates to the legacy `Simulator` — calls
// forward directly, no windows, no mailboxes — which is what makes
// `--shards 1` byte-identical to the sequential engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sdnbuf::sim {

class ShardedSimulator {
 public:
  explicit ShardedSimulator(unsigned n_shards);

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] unsigned n_shards() const { return static_cast<unsigned>(shards_.size()); }
  [[nodiscard]] Simulator& shard(unsigned i) { return *shards_.at(i); }

  // The conservative lookahead: the minimum propagation delay over all
  // shard-crossing links. Must be positive before a multi-shard run; the
  // testbed derives it from its link delays.
  void set_lookahead(SimTime lookahead);
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  // Worker threads for window execution (1 = run windows on the calling
  // thread). Results are bit-identical for any value; this only buys
  // wall-clock time. Clamped to the shard count at run time.
  void set_threads(unsigned threads);
  [[nodiscard]] unsigned threads() const { return threads_; }

  // Posts `fn` to run at absolute time `when` on shard `to`. Callable from
  // shard `from`'s execution context during a window (the link layer's
  // shard-crossing delivery) — `when` must respect the lookahead contract,
  // i.e. land at or after the current window's end.
  void post(unsigned from, unsigned to, SimTime when, EventFn fn);

  // Advances every shard to exactly `until`, executing all events with
  // t < until. (Strictly before: events at `until` belong to the next
  // window, unlike Simulator::run_until's inclusive bound.) Returns the
  // number of events executed.
  std::size_t run_until(SimTime until);

  // Runs to completion: until every shard queue and every mailbox is empty.
  std::size_t run();

  // The global completed-up-to time: every event before it has executed.
  [[nodiscard]] SimTime now() const { return floor_; }

  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::size_t pending_events() const;
  // Cross-shard messages drained so far / still waiting in mailboxes.
  [[nodiscard]] std::uint64_t messages_posted() const { return messages_posted_; }
  [[nodiscard]] std::size_t messages_pending() const;
  // Windows executed (multi-shard runs only; diagnostics for tests/benches).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }

 private:
  struct Message {
    SimTime when;
    std::uint64_t seq;  // per-(from, to) pair, monotonic
    unsigned from;
    unsigned to;
    EventFn fn;
  };
  struct Mailbox {
    std::vector<Message> messages;
    std::uint64_t next_seq = 0;
  };

  std::size_t run_windows(SimTime until, bool to_completion);
  void run_windows_threaded(SimTime until, bool to_completion, unsigned workers);
  // One coordinator step: drains mailboxes, picks the next window and stores
  // it in window_end_. Returns false when the run is over (queues empty, or
  // nothing left before `until`).
  bool plan_window(SimTime until, bool to_completion);
  void drain_mailboxes();

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Mailbox> mail_;  // index from * n_shards + to
  std::vector<Message> drain_scratch_;
  SimTime floor_;
  SimTime lookahead_;
  SimTime window_end_;
  bool in_window_ = false;
  unsigned threads_ = 1;
  std::uint64_t windows_ = 0;
  std::uint64_t messages_posted_ = 0;
};

}  // namespace sdnbuf::sim

// Discrete-event simulation core.
//
// A `Simulator` owns the event queue and the clock. Components schedule
// callbacks at absolute or relative times; events at equal times execute in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes runs fully deterministic.
//
// Hot-path design: callbacks live in a slab of pooled slots (recycled via a
// free list), so scheduling an event performs no per-event heap allocation —
// neither for the handle (a {slot, generation} pair) nor, for typical
// lambdas, for the callback itself (`EventFn` is small-buffer-optimized).
// The priority queue stores only 24-byte {when, seq, slot, generation}
// entries; cancelled entries become tombstones that are skipped on pop and
// compacted away whenever they outnumber the live entries.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/small_function.hpp"

namespace sdnbuf::sim {

// Move-only, small-buffer-optimized callback: lambdas capturing up to 64
// bytes (a handful of pointers and values) schedule without touching the
// heap; larger captures fall back to one allocation.
using EventFn = util::SmallFunction<void(), 64>;

class Simulator;

// Wall-time attribution sink for the event loop (implemented by
// obs::EventLoopProfiler). When installed via Simulator::set_profile_sink,
// every executed callback is timed with steady_clock and reported together
// with the component tag active while it ran. When absent — the default —
// the dispatch loop pays a single pointer comparison per event.
class ProfileSink {
 public:
  virtual ~ProfileSink() = default;
  virtual void on_event(const char* tag, double wall_seconds) = 0;
};

// Component attribution for the profiler: a callback that opens a
// `ScopedProfileTag` at its top is attributed to that tag. The *outermost*
// tag of an event wins (the component whose callback ran), even though the
// scope itself has unwound by the time the dispatch loop reads it — the
// first tag opened per event is latched until the loop collects it.
// Untagged callbacks land under "(untagged)". The tag is a thread-local raw
// pointer, so the string must outlive the event — components use string
// literals or their own stable name storage.
class ScopedProfileTag {
 public:
  explicit ScopedProfileTag(const char* tag) noexcept : previous_(current_) {
    current_ = tag;
    if (event_first_ == nullptr) event_first_ = tag;
  }
  ~ScopedProfileTag() { current_ = previous_; }
  ScopedProfileTag(const ScopedProfileTag&) = delete;
  ScopedProfileTag& operator=(const ScopedProfileTag&) = delete;

  [[nodiscard]] static const char* current() noexcept { return current_; }

 private:
  friend class Simulator;
  // Dispatch-loop protocol: clear before the callback, read after.
  static void begin_event() noexcept { event_first_ = nullptr; }
  [[nodiscard]] static const char* event_tag() noexcept { return event_first_; }

  // Constant-initialized inline thread_locals: no TLS init wrapper, so the
  // inline ctor/dtor compile to plain TP-relative loads and stores.
  inline static thread_local const char* current_ = nullptr;
  inline static thread_local const char* event_first_ = nullptr;
  const char* previous_;
};

// Handle for cancelling a scheduled event. Default-constructed handles are
// inert; cancelling an already-fired event is a no-op (the slot's generation
// counter has moved on, so a stale handle can never touch a recycled slot).
// Handles are trivially copyable but must not outlive their Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run at now() + delay (delay >= 0).
  EventHandle schedule(SimTime delay, EventFn fn);

  // Schedules `fn` at an absolute time (>= now()).
  EventHandle schedule_at(SimTime when, EventFn fn);

  // Runs events until the queue is empty. Returns the number executed.
  std::size_t run();

  // Runs events with time <= until; leaves later events queued and advances
  // the clock to `until`. Returns the number executed.
  std::size_t run_until(SimTime until);

  // Runs events with time strictly < until, then advances the clock to
  // `until`. This is the window-execution primitive of the sharded engine:
  // a conservative window [floor, W) must leave events at exactly W for the
  // next window, or a cross-shard message arriving at W could be ordered
  // after a local event at W that was already executed.
  std::size_t run_before(SimTime until);

  // Timestamp of the earliest live (non-cancelled) pending event, or
  // SimTime::max() when the queue is empty. Non-const because stale
  // tombstones at the heap front are popped on the way.
  [[nodiscard]] SimTime next_event_time();

  // Executes the single earliest event, if any. Returns true if one ran.
  bool step();

  [[nodiscard]] bool empty() const { return live_pending_ == 0; }
  [[nodiscard]] std::size_t pending_events() const { return live_pending_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  // Heap entries including cancelled tombstones not yet popped or compacted
  // (introspection for tests and diagnostics).
  [[nodiscard]] std::size_t queued_entries() const { return heap_.size(); }

  // Installs (or with nullptr removes) the wall-time profiler sink. Profiling
  // never touches sim time or event order — results stay bit-identical.
  void set_profile_sink(ProfileSink* sink) { profile_sink_ = sink; }
  [[nodiscard]] ProfileSink* profile_sink() const { return profile_sink_; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNoFree = ~std::uint32_t{0};
  // Below this heap size, tombstones are too cheap to be worth compacting.
  static constexpr std::size_t kCompactMinEntries = 64;

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoFree;
  };
  struct Scheduled {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  // std::push_heap/pop_heap keep the comparator's "largest" element first;
  // with this ordering that is the earliest (when, seq).
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();
  std::uint32_t acquire_slot(EventFn fn);
  void release_slot(std::uint32_t slot);
  bool cancel_slot(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] bool slot_matches(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }
  [[nodiscard]] bool stale(const Scheduled& e) const {
    return slots_[e.slot].generation != e.generation;
  }
  void pop_front();
  void maybe_compact();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_pending_ = 0;     // scheduled minus cancelled minus executed
  std::size_t cancelled_in_heap_ = 0;  // tombstones still sitting in heap_
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::vector<Scheduled> heap_;
  ProfileSink* profile_sink_ = nullptr;
};

}  // namespace sdnbuf::sim

// Discrete-event simulation core.
//
// A `Simulator` owns the event queue and the clock. Components schedule
// callbacks at absolute or relative times; events at equal times execute in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace sdnbuf::sim {

using EventFn = std::function<void()>;

// Handle for cancelling a scheduled event. Default-constructed handles are
// inert; cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<bool> cancelled, std::shared_ptr<std::uint64_t> live)
      : cancelled_(std::move(cancelled)), live_(std::move(live)) {}
  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<std::uint64_t> live_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run at now() + delay (delay >= 0).
  EventHandle schedule(SimTime delay, EventFn fn);

  // Schedules `fn` at an absolute time (>= now()).
  EventHandle schedule_at(SimTime when, EventFn fn);

  // Runs events until the queue is empty. Returns the number executed.
  std::size_t run();

  // Runs events with time <= until; leaves later events queued and advances
  // the clock to `until`. Returns the number executed.
  std::size_t run_until(SimTime until);

  // Executes the single earliest event, if any. Returns true if one ran.
  bool step();

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Scheduled {
    SimTime when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  // Scheduled minus cancelled minus executed; shared with handles so
  // cancellation can keep it accurate.
  std::shared_ptr<std::uint64_t> live_pending_ = std::make_shared<std::uint64_t>(0);
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

}  // namespace sdnbuf::sim

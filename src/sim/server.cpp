#include "sim/server.hpp"

#include <utility>

#include "util/check.hpp"

namespace sdnbuf::sim {

CpuServer::CpuServer(Simulator& sim, std::string name, unsigned cores)
    : sim_(sim), name_(std::move(name)), cores_(cores) {
  SDNBUF_CHECK_MSG(cores_ >= 1, "a server needs at least one core");
}

void CpuServer::submit(SimTime service, std::function<void()> on_done) {
  SDNBUF_CHECK_MSG(service >= SimTime::zero(), "negative service time");
  Job job{service, sim_.now(), std::move(on_done)};
  if (busy_ < cores_) {
    start(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void CpuServer::start(Job job) {
  ++busy_;
  ++jobs_started_;
  wait_ms_.add((sim_.now() - job.enqueued_at).ms());
  const SimTime service = job.service;
  auto on_done = std::move(job.on_done);
  sim_.schedule(service, [this, service, on_done = std::move(on_done)]() mutable {
    ScopedProfileTag tag{name_.c_str()};
    on_complete(service, std::move(on_done));
  });
}

void CpuServer::on_complete(SimTime service, std::function<void()> on_done) {
  SDNBUF_CHECK(busy_ > 0);
  --busy_;
  ++jobs_completed_;
  busy_time_ += service;
  // Free core: pull the next queued job before running the completion
  // callback, so callback-triggered submissions queue fairly behind it.
  if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
  if (on_done) on_done();
}

double CpuServer::utilization_percent(SimTime window_start, SimTime window_end) const {
  SDNBUF_CHECK(window_end > window_start);
  const double window = (window_end - window_start).sec();
  return busy_time_.sec() / window * 100.0;
}

void CpuServer::reset_stats() {
  busy_time_ = SimTime::zero();
  jobs_started_ = 0;
  jobs_completed_ = 0;
  wait_ms_ = util::Summary{};
}

}  // namespace sdnbuf::sim

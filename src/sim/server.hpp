// Queueing-station models for processing resources.
//
// `CpuServer` models a multi-core processor (c parallel servers, one FIFO
// queue): the switch CPU, the controller CPU, and — with one core — the
// ASIC<->CPU bus of the switch and similar serial resources. Jobs carry a
// pre-computed service time; the station provides queueing, busy-time
// accounting (for CPU-utilization metrics) and waiting-time statistics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace sdnbuf::sim {

class CpuServer {
 public:
  // `cores` >= 1. `name` is used only for diagnostics.
  CpuServer(Simulator& sim, std::string name, unsigned cores);

  CpuServer(const CpuServer&) = delete;
  CpuServer& operator=(const CpuServer&) = delete;

  // Enqueues a job. `on_done` runs when service completes (may be empty).
  void submit(SimTime service, std::function<void()> on_done);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] unsigned cores() const { return cores_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] unsigned busy_cores() const { return busy_; }

  // Total accumulated busy time across all cores (completed portions only).
  [[nodiscard]] SimTime busy_time() const { return busy_time_; }

  // Utilization over [window_start, window_end] as the OS would report a
  // process' CPU: 100% == one core fully busy, so an N-core station can
  // report up to N*100%. Only service completed within the window counts;
  // call after draining for end-of-run metrics.
  [[nodiscard]] double utilization_percent(SimTime window_start, SimTime window_end) const;

  [[nodiscard]] std::uint64_t jobs_started() const { return jobs_started_; }
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_completed_; }

  // Waiting time (queue entry -> service start) statistics, in milliseconds.
  [[nodiscard]] const util::Summary& wait_ms() const { return wait_ms_; }

  // Resets counters/statistics (not the in-flight state; call when idle).
  void reset_stats();

 private:
  struct Job {
    SimTime service;
    SimTime enqueued_at;
    std::function<void()> on_done;
  };

  void start(Job job);
  void on_complete(SimTime service, std::function<void()> on_done);

  Simulator& sim_;
  std::string name_;
  unsigned cores_;
  unsigned busy_ = 0;
  std::deque<Job> queue_;
  SimTime busy_time_;
  std::uint64_t jobs_started_ = 0;
  std::uint64_t jobs_completed_ = 0;
  util::Summary wait_ms_;
};

}  // namespace sdnbuf::sim

// Simulation time: a strong integer-nanosecond type.
//
// One type serves as both time point and duration (the arithmetic the
// simulator needs never mixes incompatible units, and a single type keeps the
// API small). Integer nanoseconds make event ordering exact and runs
// bit-reproducible — no floating-point time drift.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/strings.hpp"

namespace sdnbuf::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t v) { return SimTime{v * 1000}; }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  // From fractional seconds; rounds to the nearest nanosecond.
  [[nodiscard]] static SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static SimTime from_microseconds(double us) { return from_seconds(us * 1e-6); }
  [[nodiscard]] static SimTime from_milliseconds(double ms) { return from_seconds(ms * 1e-3); }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{}; }
  [[nodiscard]] static constexpr SimTime max() { return SimTime{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  [[nodiscard]] constexpr SimTime scaled(double f) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }

  [[nodiscard]] std::string to_string() const { return util::format_duration_ns(ns_); }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// Serialization time of `bytes` at `bits_per_second` on a link or bus.
[[nodiscard]] inline SimTime transmission_time(std::uint64_t bytes, double bits_per_second) {
  return SimTime::from_seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace sdnbuf::sim

#include "sim/sharded.hpp"

#include <algorithm>
#include <barrier>
#include <thread>

#include "util/check.hpp"

namespace sdnbuf::sim {

namespace {
// First allocation per mailbox; windows rarely carry more than a few dozen
// frames per shard pair, so one reservation makes steady-state posting
// allocation-free (the vector is cleared, not shrunk, on drain).
constexpr std::size_t kMailboxReserve = 256;
}  // namespace

ShardedSimulator::ShardedSimulator(unsigned n_shards) {
  SDNBUF_CHECK_MSG(n_shards >= 1, "need at least one shard");
  shards_.reserve(n_shards);
  for (unsigned i = 0; i < n_shards; ++i) shards_.push_back(std::make_unique<Simulator>());
  mail_.resize(static_cast<std::size_t>(n_shards) * n_shards);
}

void ShardedSimulator::set_lookahead(SimTime lookahead) {
  SDNBUF_CHECK_MSG(lookahead > SimTime::zero(), "lookahead must be positive");
  lookahead_ = lookahead;
}

void ShardedSimulator::set_threads(unsigned threads) {
  SDNBUF_CHECK_MSG(threads >= 1, "need at least one thread");
  threads_ = threads;
}

void ShardedSimulator::post(unsigned from, unsigned to, SimTime when, EventFn fn) {
  SDNBUF_CHECK(from < n_shards() && to < n_shards() && from != to);
  // The conservative contract: a message sent during a window lands at or
  // after the window's end, so draining at the barrier can never deliver
  // into a shard's past. Outside a window (setup code) the floor bounds it.
  SDNBUF_CHECK_MSG(when >= (in_window_ ? window_end_ : floor_),
                   "cross-shard message violates the lookahead contract");
  Mailbox& box = mail_[static_cast<std::size_t>(from) * n_shards() + to];
  if (box.messages.capacity() == 0) box.messages.reserve(kMailboxReserve);
  box.messages.push_back(Message{when, box.next_seq++, from, to, std::move(fn)});
}

void ShardedSimulator::drain_mailboxes() {
  drain_scratch_.clear();
  for (Mailbox& box : mail_) {
    for (Message& m : box.messages) drain_scratch_.push_back(std::move(m));
    box.messages.clear();
  }
  if (drain_scratch_.empty()) return;
  messages_posted_ += drain_scratch_.size();
  // Deterministic delivery order: (timestamp, from, to, per-pair sequence).
  // The per-pair sequence ties off equal-timestamp messages from one sender;
  // (from, to) orders pairs. The sort fixes the order in which messages
  // enter each target shard's queue — and therefore the target's tie-break
  // sequence numbers — independent of mailbox iteration order.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const Message& a, const Message& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.seq < b.seq;
            });
  for (Message& m : drain_scratch_) {
    shards_[m.to]->schedule_at(m.when, std::move(m.fn));
  }
  drain_scratch_.clear();
}

bool ShardedSimulator::plan_window(SimTime until, bool to_completion) {
  drain_mailboxes();
  SimTime earliest = SimTime::max();
  for (auto& s : shards_) earliest = std::min(earliest, s->next_event_time());
  if (to_completion) {
    if (earliest == SimTime::max()) return false;  // queues and mailboxes empty
    window_end_ = earliest + lookahead_;
    return true;
  }
  if (earliest >= until) {
    // Nothing left before the bound: jump every clock straight to it.
    for (auto& s : shards_) s->run_before(until);
    floor_ = until;
    return false;
  }
  // Idle-jump: the window starts at the earliest pending event, not at the
  // floor, so sparse phases (drain timeouts, settle periods) cost one window
  // per event cluster instead of one per lookahead quantum.
  window_end_ = std::min(earliest + lookahead_, until);
  return true;
}

std::size_t ShardedSimulator::run_windows(SimTime until, bool to_completion) {
  SDNBUF_CHECK_MSG(lookahead_ > SimTime::zero(),
                   "multi-shard runs need set_lookahead() first");
  const std::uint64_t executed0 = executed_events();
  const unsigned workers =
      std::min(threads_, static_cast<unsigned>(shards_.size()));
  if (workers <= 1) {
    while (plan_window(until, to_completion)) {
      in_window_ = true;
      for (auto& s : shards_) s->run_before(window_end_);
      in_window_ = false;
      floor_ = window_end_;
      ++windows_;
    }
  } else {
    run_windows_threaded(until, to_completion, workers);
  }
  return executed_events() - executed0;
}

void ShardedSimulator::run_windows_threaded(SimTime until, bool to_completion,
                                            unsigned workers) {
  // Persistent workers, two barriers per window: the coordinator (this
  // thread) plans the window, releases the start gate, workers execute their
  // shards' slice of it, and the end gate hands control back. Barriers give
  // the memory ordering: everything a worker wrote (shard state, mailboxes)
  // is visible to the coordinator at the end gate and vice versa.
  std::barrier<> start_gate(workers + 1);
  std::barrier<> end_gate(workers + 1);
  bool stop = false;

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([this, w, workers, &start_gate, &end_gate, &stop]() {
      for (;;) {
        start_gate.arrive_and_wait();
        if (stop) return;
        for (unsigned i = w; i < n_shards(); i += workers) {
          shards_[i]->run_before(window_end_);
        }
        end_gate.arrive_and_wait();
      }
    });
  }

  while (plan_window(until, to_completion)) {
    in_window_ = true;
    start_gate.arrive_and_wait();
    end_gate.arrive_and_wait();
    in_window_ = false;
    floor_ = window_end_;
    ++windows_;
  }
  stop = true;
  start_gate.arrive_and_wait();
  for (auto& t : pool) t.join();
}

std::size_t ShardedSimulator::run_until(SimTime until) {
  SDNBUF_CHECK(until >= floor_);
  if (n_shards() == 1) {
    // Single shard: the legacy engine verbatim (inclusive bound and all).
    const std::size_t n = shards_[0]->run_until(until);
    floor_ = until;
    return n;
  }
  return run_windows(until, /*to_completion=*/false);
}

std::size_t ShardedSimulator::run() {
  if (n_shards() == 1) {
    const std::size_t n = shards_[0]->run();
    floor_ = shards_[0]->now();
    return n;
  }
  const std::size_t n = run_windows(SimTime::max(), /*to_completion=*/true);
  floor_ = window_end_ > floor_ ? window_end_ : floor_;
  return n;
}

std::uint64_t ShardedSimulator::executed_events() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->executed_events();
  return n;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->pending_events();
  return n;
}

std::size_t ShardedSimulator::messages_pending() const {
  std::size_t n = 0;
  for (const auto& box : mail_) n += box.messages.size();
  return n;
}

}  // namespace sdnbuf::sim

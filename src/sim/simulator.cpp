#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace sdnbuf::sim {

void EventHandle::cancel() {
  if (cancelled_ && !*cancelled_) {
    *cancelled_ = true;
    if (live_ && *live_ > 0) --*live_;
  }
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Simulator::schedule(SimTime delay, EventFn fn) {
  SDNBUF_CHECK_MSG(delay >= SimTime::zero(), "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, EventFn fn) {
  SDNBUF_CHECK_MSG(when >= now_, "cannot schedule into the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Scheduled{when, next_seq_++, std::move(fn), cancelled});
  ++*live_pending_;
  return EventHandle{std::move(cancelled), live_pending_};
}

bool Simulator::pop_and_run() {
  // The queue may hold cancelled tombstones; skip them.
  while (!queue_.empty()) {
    Scheduled ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    *ev.cancelled = true;  // marks as no longer pending for its handle
    SDNBUF_CHECK(*live_pending_ > 0);
    --*live_pending_;
    SDNBUF_CHECK(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime until) {
  SDNBUF_CHECK(until >= now_);
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip tombstones without advancing time.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    if (pop_and_run()) ++n;
  }
  now_ = until;
  return n;
}

bool Simulator::step() { return pop_and_run(); }

bool Simulator::empty() const { return *live_pending_ == 0; }

std::size_t Simulator::pending_events() const { return *live_pending_; }

}  // namespace sdnbuf::sim

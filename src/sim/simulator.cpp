#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace sdnbuf::sim {

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_slot(slot_, generation_);
}

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->slot_matches(slot_, generation_);
}

EventHandle Simulator::schedule(SimTime delay, EventFn fn) {
  SDNBUF_CHECK_MSG(delay >= SimTime::zero(), "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, EventFn fn) {
  SDNBUF_CHECK_MSG(when >= now_, "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot(std::move(fn));
  const std::uint32_t generation = slots_[slot].generation;
  heap_.push_back(Scheduled{when, next_seq_++, slot, generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_pending_;
  return EventHandle{this, slot, generation};
}

std::uint32_t Simulator::acquire_slot(EventFn fn) {
  std::uint32_t slot;
  if (free_head_ != kNoFree) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    SDNBUF_CHECK_MSG(slots_.size() < kNoFree, "event slab exhausted");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  slots_[slot].next_free = kNoFree;
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  // The bump invalidates every outstanding handle and heap entry for the
  // slot's previous life before the free list can hand it out again.
  ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
}

bool Simulator::cancel_slot(std::uint32_t slot, std::uint32_t generation) {
  if (!slot_matches(slot, generation)) return false;
  release_slot(slot);
  SDNBUF_CHECK(live_pending_ > 0);
  --live_pending_;
  ++cancelled_in_heap_;
  maybe_compact();
  return true;
}

void Simulator::pop_front() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

void Simulator::maybe_compact() {
  // Heavy cancel traffic (echo timers, resend backoff) must not bloat the
  // heap: once tombstones outnumber live entries, filter and re-heapify in
  // one O(n) pass.
  if (heap_.size() < kCompactMinEntries || cancelled_in_heap_ * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const Scheduled& e) { return stale(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_in_heap_ = 0;
}

bool Simulator::pop_and_run() {
  // The heap may hold cancelled tombstones; skip them.
  while (!heap_.empty()) {
    const Scheduled ev = heap_.front();
    pop_front();
    if (stale(ev)) {
      SDNBUF_CHECK(cancelled_in_heap_ > 0);
      --cancelled_in_heap_;
      continue;
    }
    // Move the callback out and recycle the slot *before* running, so the
    // callback can freely schedule into the just-freed slot.
    EventFn fn = std::move(slots_[ev.slot].fn);
    release_slot(ev.slot);
    SDNBUF_CHECK(live_pending_ > 0);
    --live_pending_;
    SDNBUF_CHECK(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    if (profile_sink_ == nullptr) {
      fn();
    } else {
      ScopedProfileTag::begin_event();
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      profile_sink_->on_event(ScopedProfileTag::event_tag(), wall_s);
    }
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime until) {
  SDNBUF_CHECK(until >= now_);
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Skip tombstones without advancing time.
    if (stale(heap_.front())) {
      pop_front();
      SDNBUF_CHECK(cancelled_in_heap_ > 0);
      --cancelled_in_heap_;
      continue;
    }
    if (heap_.front().when > until) break;
    if (pop_and_run()) ++n;
  }
  now_ = until;
  return n;
}

std::size_t Simulator::run_before(SimTime until) {
  SDNBUF_CHECK(until >= now_);
  std::size_t n = 0;
  while (!heap_.empty()) {
    if (stale(heap_.front())) {
      pop_front();
      SDNBUF_CHECK(cancelled_in_heap_ > 0);
      --cancelled_in_heap_;
      continue;
    }
    if (heap_.front().when >= until) break;
    if (pop_and_run()) ++n;
  }
  now_ = until;
  return n;
}

SimTime Simulator::next_event_time() {
  while (!heap_.empty()) {
    if (!stale(heap_.front())) return heap_.front().when;
    pop_front();
    SDNBUF_CHECK(cancelled_in_heap_ > 0);
    --cancelled_in_heap_;
  }
  return SimTime::max();
}

bool Simulator::step() { return pop_and_run(); }

}  // namespace sdnbuf::sim

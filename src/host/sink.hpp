// The receiving host: counts deliveries, tracks per-flow completeness and
// end-to-end latency samples, and feeds the delay recorder's
// packets_delivered conservation counter.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "metrics/delay_recorder.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace sdnbuf::host {

class HostSink {
 public:
  explicit HostSink(sim::Simulator& sim) : sim_(&sim) {}

  void set_delay_recorder(metrics::DelayRecorder* recorder) { recorder_ = recorder; }

  // Delivery feedback for closed-loop senders: fires on every first-copy
  // arrival of a tracked packet (duplicates from spurious retransmits are
  // counted but not re-reported).
  void set_on_receive(std::function<void(const net::Packet&)> cb) { on_receive_ = std::move(cb); }

  // Telemetry harvest point: fires once per first-copy tracked delivery with
  // the packet (including its INT hop-stamp stack) and the arrival time. A
  // std::function rather than a FabricObservatory* keeps the host layer free
  // of an obs-trace link dependency.
  void set_telemetry_tap(std::function<void(const net::Packet&, sim::SimTime)> tap) {
    telemetry_tap_ = std::move(tap);
  }

  // Delivery callback (wired to the far end of the switch->host link).
  void receive(const net::Packet& packet);

  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] std::uint64_t duplicate_packets() const { return duplicates_; }
  [[nodiscard]] sim::SimTime last_arrival() const { return last_arrival_; }

  // End-to-end latency (source emission -> sink arrival), milliseconds.
  [[nodiscard]] const util::Samples& latency_ms() const { return latency_ms_; }

  // Packets received for one flow.
  [[nodiscard]] std::uint64_t flow_packets(std::uint64_t flow_id) const;

  void reset();

 private:
  sim::Simulator* sim_;
  metrics::DelayRecorder* recorder_ = nullptr;
  std::function<void(const net::Packet&)> on_receive_;
  std::function<void(const net::Packet&, sim::SimTime)> telemetry_tap_;
  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t duplicates_ = 0;
  sim::SimTime last_arrival_;
  util::Samples latency_ms_;
  // flow -> set of seen sequence numbers is overkill; count per (flow, seq)
  // pairs to detect duplicates cheaply.
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint32_t, std::uint32_t>> seen_;
};

}  // namespace sdnbuf::host

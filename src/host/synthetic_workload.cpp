#include "host/synthetic_workload.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sdnbuf::host {

SyntheticWorkload::SyntheticWorkload(sim::Simulator& sim, WorkloadConfig config,
                                     std::uint64_t rng_seed, EmitFn emit)
    : sim_(sim), config_(std::move(config)), rng_(rng_seed), emit_(std::move(emit)) {
  SDNBUF_CHECK_MSG(config_.duration_s > 0, "duration must be positive");
  SDNBUF_CHECK_MSG(config_.flow_arrival_per_s > 0, "arrival rate must be positive");
  SDNBUF_CHECK_MSG(config_.pareto_alpha > 0, "Pareto shape must be positive");
  SDNBUF_CHECK_MSG(config_.min_packets >= 1 && config_.max_packets >= config_.min_packets,
                   "flow size bounds inverted");
  SDNBUF_CHECK_MSG(emit_ != nullptr, "emit function required");
}

std::uint32_t draw_bounded_pareto(util::Rng& rng, double alpha, std::uint32_t min_packets,
                                  std::uint32_t max_packets) {
  // Bounded Pareto via inverse transform: F^-1(u) with support
  // [min_packets, max_packets].
  const double lo = static_cast<double>(min_packets);
  const double hi = static_cast<double>(max_packets);
  const double lo_a = std::pow(lo, alpha);
  const double hi_a = std::pow(hi, alpha);
  double u;
  do {
    u = rng.next_double();
  } while (u >= 1.0);
  const double x = std::pow(-(u * hi_a - u * lo_a - hi_a) / (hi_a * lo_a), -1.0 / alpha);
  const double clamped = std::min(hi, std::max(lo, x));
  return static_cast<std::uint32_t>(clamped + 0.5);
}

std::uint32_t SyntheticWorkload::draw_flow_size() {
  return draw_bounded_pareto(rng_, config_.pareto_alpha, config_.min_packets,
                             config_.max_packets);
}

void SyntheticWorkload::start() {
  SDNBUF_CHECK_MSG(!started_, "workload already started");
  started_ = true;
  horizon_ = sim_.now() + sim::SimTime::from_seconds(config_.duration_s);
  schedule_next_arrival();
}

void SyntheticWorkload::schedule_next_arrival() {
  const double gap_s = rng_.exponential(1.0 / config_.flow_arrival_per_s);
  const sim::SimTime when = sim_.now() + sim::SimTime::from_seconds(gap_s);
  if (when > horizon_) return;  // arrival process ends at the horizon
  sim_.schedule_at(when, [this]() {
    start_flow();
    schedule_next_arrival();
  });
}

void SyntheticWorkload::start_flow() {
  const std::uint64_t flow_index = flows_started_++;
  const std::uint32_t total = draw_flow_size();
  flow_sizes_.add(static_cast<double>(total));
  emit_packet(flow_index, 0, total);
}

void SyntheticWorkload::emit_packet(std::uint64_t flow_index, std::uint32_t seq,
                                    std::uint32_t total) {
  const net::Ipv4Address src_ip{
      static_cast<std::uint32_t>(config_.src_ip_base.value() + flow_index)};
  net::Packet p = net::make_udp_packet(
      config_.src_mac, config_.dst_mac, src_ip, config_.dst_ip,
      static_cast<std::uint16_t>(10000 + flow_index % 20000), config_.dst_port,
      config_.frame_size);
  p.flow_id = config_.flow_id_base + flow_index;
  p.seq_in_flow = seq;
  p.created_at = sim_.now();
  emit_(p);
  ++packets_emitted_;
  if (seq + 1 >= total) return;
  sim::SimTime gap = sim::transmission_time(config_.frame_size, config_.in_flow_rate_mbps * 1e6);
  if (config_.spacing_jitter > 0) {
    gap = gap.scaled(
        rng_.uniform(1.0 - config_.spacing_jitter, 1.0 + config_.spacing_jitter));
  }
  sim_.schedule(gap, [this, flow_index, seq, total]() {
    emit_packet(flow_index, seq + 1, total);
  });
}

}  // namespace sdnbuf::host

#include "host/reliable_sender.hpp"

#include "util/check.hpp"

namespace sdnbuf::host {

ReliableSender::ReliableSender(sim::Simulator& sim, ReliableSenderConfig config, SendFn send)
    : sim_(sim), config_(config), send_(std::move(send)) {
  SDNBUF_CHECK_MSG(config_.rto > sim::SimTime::zero(), "need a positive RTO");
  SDNBUF_CHECK_MSG(config_.backoff >= 1.0, "backoff must not shrink the RTO");
  SDNBUF_CHECK(send_ != nullptr);
}

void ReliableSender::offer(unsigned src, const net::Packet& packet) {
  const std::uint64_t key = key_of(packet);
  SDNBUF_CHECK_MSG(outstanding_.count(key) == 0, "packet offered twice");
  Pending& p = outstanding_[key];
  p.src = src;
  p.packet = packet;
  p.next_rto = config_.rto;
  ++counters_.offered;
  ++counters_.sent;
  send_(src, packet);
  arm_timer(key);
}

void ReliableSender::acknowledge(const net::Packet& packet) {
  const std::uint64_t key = key_of(packet);
  auto apply = [this, key]() {
    const auto it = outstanding_.find(key);
    if (it == outstanding_.end()) {
      // Already acked (duplicate delivery) or abandoned: feedback for a
      // packet the sender stopped tracking.
      ++counters_.spurious_acks;
      return;
    }
    it->second.timer.cancel();
    outstanding_.erase(it);
    ++counters_.acked;
  };
  if (config_.ack_delay > sim::SimTime::zero()) {
    sim_.schedule(config_.ack_delay, std::move(apply));
  } else {
    apply();
  }
}

void ReliableSender::arm_timer(std::uint64_t key) {
  Pending& p = outstanding_.at(key);
  p.timer = sim_.schedule(p.next_rto, [this, key]() {
    sim::ScopedProfileTag tag{"reliable_sender"};
    on_timeout(key);
  });
}

void ReliableSender::on_timeout(std::uint64_t key) {
  const auto it = outstanding_.find(key);
  if (it == outstanding_.end()) return;  // raced with a cancel
  Pending& p = it->second;
  if (p.retransmits >= config_.max_retransmits) {
    ++counters_.abandoned;
    outstanding_.erase(it);
    return;
  }
  ++p.retransmits;
  p.next_rto = p.next_rto.scaled(config_.backoff);
  ++counters_.sent;
  ++counters_.retransmits;
  send_(p.src, p.packet);
  arm_timer(key);
}

void ReliableSender::stop() {
  for (auto& [key, p] : outstanding_) p.timer.cancel();
}

}  // namespace sdnbuf::host

#include "host/sink.hpp"

namespace sdnbuf::host {

void HostSink::receive(const net::Packet& packet) {
  ++packets_received_;
  bytes_received_ += packet.frame_size;
  last_arrival_ = sim_->now();
  latency_ms_.add((sim_->now() - packet.created_at).ms());
  if (recorder_ != nullptr) recorder_->on_packet_delivered(packet.flow_id, sim_->now());
  if (packet.flow_id != metrics::kUntrackedFlow) {
    auto& per_seq = seen_[packet.flow_id];
    const bool first_copy = ++per_seq[packet.seq_in_flow] == 1;
    if (!first_copy) ++duplicates_;
    if (first_copy && telemetry_tap_) telemetry_tap_(packet, sim_->now());
    if (first_copy && on_receive_) on_receive_(packet);
  }
}

std::uint64_t HostSink::flow_packets(std::uint64_t flow_id) const {
  const auto it = seen_.find(flow_id);
  if (it == seen_.end()) return 0;
  std::uint64_t n = 0;
  for (const auto& [seq, count] : it->second) n += count;
  return n;
}

void HostSink::reset() {
  packets_received_ = 0;
  bytes_received_ = 0;
  duplicates_ = 0;
  last_arrival_ = sim::SimTime::zero();
  latency_ms_ = util::Samples{};
  seen_.clear();
}

}  // namespace sdnbuf::host

// Many-host traffic-matrix workloads for fabric experiments.
//
// Where `SyntheticWorkload` models one host pair, this layer spreads Poisson
// flow arrivals over many host pairs according to a communication pattern:
//
//   all-to-all    every flow picks an independent (src, dst) pair uniformly
//                 (dst != src) — the densest matrix, every switch sees misses
//   permutation   a fixed random rotation: host i always talks to host
//                 (i + k) mod n — each host one destination, classic
//                 worst-case for oblivious routing
//   incast        many senders converge on one target host — the paper's
//                 fan-in stress case at fabric scale (flow-granularity
//                 buffering collapses the per-sender packet_in storms)
//
// Flow sizes reuse the bounded-Pareto distribution of `SyntheticWorkload`
// (same inverse-transform draw); packets within a flow are paced at a
// per-flow rate with jitter. Addressing is positional (`topo::Topology`'s
// host_mac/host_ip scheme) but passed in as plain vectors so this layer
// stays independent of the topology engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sdnbuf::host {

enum class TrafficPattern { AllToAll, Permutation, Incast };

[[nodiscard]] const char* traffic_pattern_name(TrafficPattern pattern);

struct TrafficMatrixConfig {
  TrafficPattern pattern = TrafficPattern::AllToAll;

  // Host addressing, indexed by host id (typically Topology::host_mac/ip).
  std::vector<net::MacAddress> host_macs;
  std::vector<net::Ipv4Address> host_ips;

  // Incast only: the receiving host and how many distinct senders fan in
  // (0 = every other host).
  unsigned incast_target = 0;
  unsigned incast_fanin = 0;

  // Aggregate Poisson flow arrivals, generated for `duration_s`.
  double duration_s = 1.0;
  double flow_arrival_per_s = 500.0;

  // Bounded Pareto over packets per flow (SyntheticWorkload's distribution).
  double pareto_alpha = 1.3;
  std::uint32_t min_packets = 1;
  std::uint32_t max_packets = 200;

  // Pacing of packets within one flow.
  double in_flow_rate_mbps = 20.0;
  double spacing_jitter = 0.2;

  std::uint32_t frame_size = 1000;
  std::uint16_t dst_port = 9;
  std::uint64_t flow_id_base = 0;
};

// One packet emission replayed from a pregenerated schedule.
struct PregeneratedEmission {
  sim::SimTime when;  // emission time, relative to the workload start
  unsigned src_host = 0;
  net::Packet packet;
};

// A whole traffic matrix unrolled ahead of time. The workload's event chain
// is self-contained (arrivals schedule arrivals, emissions schedule
// emissions; nothing in the network feeds back into it), so replaying it on
// a scratch simulator reproduces the exact draw sequence — and therefore the
// exact packets and timestamps — of an inline run. Sharded fabric drivers
// use this to schedule each emission directly on its source host's shard.
struct PregeneratedTraffic {
  std::vector<PregeneratedEmission> emissions;  // in emission-time order
  std::uint64_t flows_started = 0;
  util::Samples flow_sizes;
};

[[nodiscard]] PregeneratedTraffic pregenerate_traffic_matrix(const TrafficMatrixConfig& config,
                                                             std::uint64_t rng_seed);

class TrafficMatrixWorkload {
 public:
  // Called for every emitted packet with the sending host's index.
  using EmitFn = std::function<void(unsigned src_host, const net::Packet&)>;

  TrafficMatrixWorkload(sim::Simulator& sim, TrafficMatrixConfig config, std::uint64_t rng_seed,
                        EmitFn emit);

  // Schedules the whole arrival process starting at now().
  void start();

  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t packets_emitted() const { return packets_emitted_; }
  [[nodiscard]] const util::Samples& flow_sizes() const { return flow_sizes_; }

  // The (src, dst) host pair flow number `flow_index` uses — exposed so
  // tests can assert pattern shape without running the simulator.
  [[nodiscard]] std::pair<unsigned, unsigned> pick_pair(std::uint64_t flow_index);

 private:
  void schedule_next_arrival();
  void start_flow();
  void emit_packet(std::uint64_t flow_index, unsigned src, unsigned dst, std::uint32_t seq,
                   std::uint32_t total);
  [[nodiscard]] unsigned n_hosts() const {
    return static_cast<unsigned>(config_.host_macs.size());
  }

  sim::Simulator& sim_;
  TrafficMatrixConfig config_;
  util::Rng rng_;
  EmitFn emit_;
  sim::SimTime horizon_;
  bool started_ = false;
  unsigned permutation_shift_ = 0;  // drawn once at construction
  std::uint64_t flows_started_ = 0;
  std::uint64_t packets_emitted_ = 0;
  util::Samples flow_sizes_;
};

}  // namespace sdnbuf::host

#include "host/traffic_matrix.hpp"

#include "host/synthetic_workload.hpp"
#include "util/check.hpp"

namespace sdnbuf::host {

const char* traffic_pattern_name(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::AllToAll: return "all-to-all";
    case TrafficPattern::Permutation: return "permutation";
    case TrafficPattern::Incast: return "incast";
  }
  return "unknown";
}

PregeneratedTraffic pregenerate_traffic_matrix(const TrafficMatrixConfig& config,
                                               std::uint64_t rng_seed) {
  sim::Simulator scratch;
  PregeneratedTraffic out;
  TrafficMatrixWorkload gen{scratch, config, rng_seed,
                            [&out, &scratch](unsigned src, const net::Packet& p) {
                              out.emissions.push_back(
                                  PregeneratedEmission{scratch.now(), src, p});
                            }};
  gen.start();
  scratch.run();
  out.flows_started = gen.flows_started();
  out.flow_sizes = gen.flow_sizes();
  return out;
}

TrafficMatrixWorkload::TrafficMatrixWorkload(sim::Simulator& sim, TrafficMatrixConfig config,
                                             std::uint64_t rng_seed, EmitFn emit)
    : sim_(sim), config_(std::move(config)), rng_(rng_seed), emit_(std::move(emit)) {
  SDNBUF_CHECK_MSG(config_.host_macs.size() == config_.host_ips.size(),
                   "host MAC/IP vectors must align");
  SDNBUF_CHECK_MSG(n_hosts() >= 2, "a traffic matrix needs at least two hosts");
  SDNBUF_CHECK_MSG(config_.duration_s > 0, "duration must be positive");
  SDNBUF_CHECK_MSG(config_.flow_arrival_per_s > 0, "arrival rate must be positive");
  SDNBUF_CHECK_MSG(config_.pareto_alpha > 0, "Pareto shape must be positive");
  SDNBUF_CHECK_MSG(config_.min_packets >= 1 && config_.max_packets >= config_.min_packets,
                   "flow size bounds inverted");
  SDNBUF_CHECK_MSG(config_.incast_target < n_hosts(), "incast target out of range");
  SDNBUF_CHECK_MSG(config_.incast_fanin < n_hosts(), "incast fan-in needs a non-sender");
  SDNBUF_CHECK_MSG(emit_ != nullptr, "emit function required");
  // One draw fixes the permutation for the run; drawn unconditionally so the
  // downstream stream is pattern-independent for a given seed.
  permutation_shift_ = 1 + static_cast<unsigned>(rng_.next_below(n_hosts() - 1));
}

std::pair<unsigned, unsigned> TrafficMatrixWorkload::pick_pair(std::uint64_t flow_index) {
  const unsigned n = n_hosts();
  switch (config_.pattern) {
    case TrafficPattern::AllToAll: {
      const unsigned src = static_cast<unsigned>(rng_.next_below(n));
      // Uniform over the n-1 other hosts via skip-adjustment.
      unsigned dst = static_cast<unsigned>(rng_.next_below(n - 1));
      if (dst >= src) ++dst;
      return {src, dst};
    }
    case TrafficPattern::Permutation: {
      const unsigned src = static_cast<unsigned>(flow_index % n);
      return {src, (src + permutation_shift_) % n};
    }
    case TrafficPattern::Incast: {
      const unsigned target = config_.incast_target;
      const unsigned fanin =
          config_.incast_fanin == 0 ? n - 1 : config_.incast_fanin;
      // Senders are the `fanin` hosts after the target, cyclically.
      const unsigned pick = static_cast<unsigned>(rng_.next_below(fanin));
      return {(target + 1 + pick) % n, target};
    }
  }
  SDNBUF_CHECK_MSG(false, "unknown traffic pattern");
  return {0, 1};
}

void TrafficMatrixWorkload::start() {
  SDNBUF_CHECK_MSG(!started_, "workload already started");
  started_ = true;
  horizon_ = sim_.now() + sim::SimTime::from_seconds(config_.duration_s);
  schedule_next_arrival();
}

void TrafficMatrixWorkload::schedule_next_arrival() {
  const double gap_s = rng_.exponential(1.0 / config_.flow_arrival_per_s);
  const sim::SimTime when = sim_.now() + sim::SimTime::from_seconds(gap_s);
  if (when > horizon_) return;  // arrival process ends at the horizon
  sim_.schedule_at(when, [this]() {
    start_flow();
    schedule_next_arrival();
  });
}

void TrafficMatrixWorkload::start_flow() {
  const std::uint64_t flow_index = flows_started_++;
  const auto [src, dst] = pick_pair(flow_index);
  const std::uint32_t total =
      draw_bounded_pareto(rng_, config_.pareto_alpha, config_.min_packets, config_.max_packets);
  flow_sizes_.add(static_cast<double>(total));
  emit_packet(flow_index, src, dst, 0, total);
}

void TrafficMatrixWorkload::emit_packet(std::uint64_t flow_index, unsigned src, unsigned dst,
                                        std::uint32_t seq, std::uint32_t total) {
  net::Packet p = net::make_udp_packet(
      config_.host_macs[src], config_.host_macs[dst], config_.host_ips[src],
      config_.host_ips[dst], static_cast<std::uint16_t>(10000 + flow_index % 50000),
      config_.dst_port, config_.frame_size);
  p.flow_id = config_.flow_id_base + flow_index;
  p.seq_in_flow = seq;
  p.created_at = sim_.now();
  emit_(src, p);
  ++packets_emitted_;
  if (seq + 1 >= total) return;
  sim::SimTime gap = sim::transmission_time(config_.frame_size, config_.in_flow_rate_mbps * 1e6);
  if (config_.spacing_jitter > 0) {
    gap = gap.scaled(
        rng_.uniform(1.0 - config_.spacing_jitter, 1.0 + config_.spacing_jitter));
  }
  sim_.schedule(gap, [this, flow_index, src, dst, seq, total]() {
    emit_packet(flow_index, src, dst, seq + 1, total);
  });
}

}  // namespace sdnbuf::host

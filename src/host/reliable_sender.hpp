// Closed-loop reliable sender (ROADMAP item 4).
//
// The open-loop traffic generators emit packets and forget them — a lost
// frame is simply gone, so a fault run measures loss but not the load that
// loss would re-offer in a real deployment. `ReliableSender` closes the
// loop: every offered packet stays outstanding until the receiving sink
// acknowledges its first copy, and an un-acked packet is retransmitted on a
// per-packet retransmission timeout with exponential backoff, up to a cap.
// Retransmits re-enter the fabric like fresh injections, so a link outage
// turns into re-offered load — exactly the amplification the failover
// benchmark wants to measure.
//
// Determinism: timers derive only from offer/ack times and the configured
// RTO sequence; there is no randomness in the sender itself.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sdnbuf::host {

struct ReliableSenderConfig {
  // Initial retransmission timeout; doubles (times `backoff`) per attempt.
  sim::SimTime rto = sim::SimTime::milliseconds(50);
  double backoff = 2.0;
  // Retransmits per packet before it is abandoned (bounds fault-time work so
  // a permanently-dead destination cannot spin forever).
  unsigned max_retransmits = 8;
  // Delay between the sink receiving a packet and the sender learning it
  // (models the reverse ack path; zero = instantaneous feedback).
  sim::SimTime ack_delay = sim::SimTime::zero();
};

struct ReliableSenderCounters {
  std::uint64_t offered = 0;        // unique packets offered
  std::uint64_t sent = 0;           // injections incl. retransmits
  std::uint64_t retransmits = 0;
  std::uint64_t acked = 0;
  std::uint64_t spurious_acks = 0;  // acks for packets no longer outstanding
  std::uint64_t abandoned = 0;      // retransmit cap exhausted
};

class ReliableSender {
 public:
  // `send` injects one packet from source host `src` into the fabric.
  using SendFn = std::function<void(unsigned src, const net::Packet& packet)>;

  ReliableSender(sim::Simulator& sim, ReliableSenderConfig config, SendFn send);

  ReliableSender(const ReliableSender&) = delete;
  ReliableSender& operator=(const ReliableSender&) = delete;

  // Offers one packet for reliable delivery from host `src`: sends it now
  // and retransmits until acknowledged or the cap is reached.
  void offer(unsigned src, const net::Packet& packet);

  // Delivery feedback, keyed by (flow_id, seq_in_flow) — wire this to the
  // destination sinks' first-copy callbacks. Applies after `ack_delay`.
  void acknowledge(const net::Packet& packet);

  [[nodiscard]] const ReliableSenderCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }

  // Cancels every pending retransmission timer (without acking anything) so
  // a finished simulation can drain.
  void stop();

 private:
  struct Pending {
    unsigned src = 0;
    net::Packet packet;
    unsigned retransmits = 0;
    sim::SimTime next_rto;
    sim::EventHandle timer;
  };

  [[nodiscard]] static std::uint64_t key_of(const net::Packet& packet) {
    return packet.flow_id << 20 | packet.seq_in_flow;
  }

  void arm_timer(std::uint64_t key);
  void on_timeout(std::uint64_t key);

  sim::Simulator& sim_;
  ReliableSenderConfig config_;
  SendFn send_;
  ReliableSenderCounters counters_;
  std::unordered_map<std::uint64_t, Pending> outstanding_;
};

}  // namespace sdnbuf::host

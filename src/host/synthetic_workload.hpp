// Synthetic "Internet-like" workload: Poisson flow arrivals with
// heavy-tailed (bounded-Pareto) flow sizes.
//
// The paper's E1/E2 workloads are regular by design (fixed-size flows at a
// fixed rate); real links look different — reference [27] (CAIDA's TCP/UDP
// analysis) motivates a mix of many tiny flows and a few large ones. This
// generator produces that shape so the buffer mechanisms can be compared
// under realistic arrival dynamics (`bench_realistic_workload`):
//
//   - flow arrivals: Poisson process with a configurable rate
//   - flow sizes (packets): bounded Pareto (shape alpha, min/max)
//   - packets within a flow: paced at a per-flow rate with jitter
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sdnbuf::host {

// One bounded-Pareto draw over [min_packets, max_packets] (inverse
// transform), shared by SyntheticWorkload and the fabric traffic-matrix
// workload so both sample identical flow-size distributions.
[[nodiscard]] std::uint32_t draw_bounded_pareto(util::Rng& rng, double alpha,
                                                std::uint32_t min_packets,
                                                std::uint32_t max_packets);

struct WorkloadConfig {
  // Flow arrivals are generated for this long (packets may finish later).
  double duration_s = 1.0;
  double flow_arrival_per_s = 500.0;

  // Bounded Pareto over packets per flow.
  double pareto_alpha = 1.3;
  std::uint32_t min_packets = 1;
  std::uint32_t max_packets = 200;

  // Pacing of packets within one flow.
  double in_flow_rate_mbps = 20.0;
  double spacing_jitter = 0.2;

  std::uint32_t frame_size = 1000;

  // Addressing (same scheme as TrafficConfig: forged per-flow source IPs).
  net::MacAddress src_mac;
  net::MacAddress dst_mac;
  net::Ipv4Address src_ip_base = net::Ipv4Address::from_octets(10, 1, 0, 1);
  net::Ipv4Address dst_ip = net::Ipv4Address::from_octets(10, 2, 0, 1);
  std::uint16_t dst_port = 9;
  std::uint64_t flow_id_base = 0;
};

class SyntheticWorkload {
 public:
  using EmitFn = std::function<void(const net::Packet&)>;

  SyntheticWorkload(sim::Simulator& sim, WorkloadConfig config, std::uint64_t rng_seed,
                    EmitFn emit);

  // Schedules the whole arrival process starting at now().
  void start();

  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t packets_emitted() const { return packets_emitted_; }
  // Distribution of the generated flow sizes (packets per flow).
  [[nodiscard]] const util::Samples& flow_sizes() const { return flow_sizes_; }

  // Draws one bounded-Pareto flow size (exposed for tests).
  [[nodiscard]] std::uint32_t draw_flow_size();

 private:
  void schedule_next_arrival();
  void start_flow();
  void emit_packet(std::uint64_t flow_index, std::uint32_t seq, std::uint32_t total);

  sim::Simulator& sim_;
  WorkloadConfig config_;
  util::Rng rng_;
  EmitFn emit_;
  sim::SimTime horizon_;
  bool started_ = false;
  std::uint64_t flows_started_ = 0;
  std::uint64_t packets_emitted_ = 0;
  util::Samples flow_sizes_;
};

}  // namespace sdnbuf::host

// The traffic generator (the testbed's pktgen stand-in).
//
// Generates UDP flows at a configured sending rate with a fixed frame size.
// "New flows" are forged by varying the source IP address per flow, exactly
// as the paper does with pktgen. Two emission orders cover the paper's two
// experiments:
//
//   Sequential     flow 0's packets, then flow 1's, ... — with one packet
//                  per flow this is §IV's workload (1000 single-packet
//                  flows).
//   CrossSequence  flows in batches of `batch_size`; within a batch packets
//                  are interleaved round-robin (f1p1 f2p1 ... f5p1 f1p2 ...)
//                  and the next batch starts when the batch is fully sent —
//                  §V.B's workload (50 flows x 20 packets, batches of 5).
//
// Packets are spaced at the nominal rate with optional uniform jitter.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sdnbuf::host {

enum class EmissionOrder { Sequential, CrossSequence };

struct TrafficConfig {
  double rate_mbps = 10.0;
  // IP protocol of the generated flows. UDP is the paper's workload; TCP
  // packets (PSH|ACK data segments, as if a connection resumed after rule
  // eviction) support the mixed-traffic experiments of §VI. A mix fraction
  // in (0,1) makes that share of flows TCP.
  double tcp_flow_fraction = 0.0;
  std::uint32_t frame_size = 1000;
  std::uint64_t n_flows = 1000;
  std::uint32_t packets_per_flow = 1;
  EmissionOrder order = EmissionOrder::Sequential;
  std::uint32_t batch_size = 5;  // CrossSequence only

  // Addressing. Each flow f uses src_ip = src_ip_base + f (forged sources)
  // and src_port = src_port_base + (f % 20000).
  net::MacAddress src_mac;
  net::MacAddress dst_mac;
  net::Ipv4Address src_ip_base = net::Ipv4Address::from_octets(10, 1, 0, 1);
  net::Ipv4Address dst_ip = net::Ipv4Address::from_octets(10, 2, 0, 1);
  std::uint16_t src_port_base = 10000;
  std::uint16_t dst_port = 9;  // discard

  // First flow id stamped into packet metadata.
  std::uint64_t flow_id_base = 0;

  // Uniform inter-packet jitter as a fraction of the nominal gap (0 = none).
  double spacing_jitter = 0.1;
};

class TrafficGenerator {
 public:
  // `emit` injects a packet into the network (typically host NIC -> link).
  using EmitFn = std::function<void(const net::Packet&)>;

  TrafficGenerator(sim::Simulator& sim, TrafficConfig config, std::uint64_t rng_seed,
                   EmitFn emit);

  // Schedules the whole run starting at now() + start_delay. `on_done`
  // (optional) fires right after the last packet is emitted.
  void start(sim::SimTime start_delay = sim::SimTime::zero(),
             std::function<void()> on_done = nullptr);

  [[nodiscard]] std::uint64_t packets_emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t total_packets() const {
    return config_.n_flows * config_.packets_per_flow;
  }

  // Nominal time between consecutive packets at the configured rate.
  [[nodiscard]] sim::SimTime nominal_gap() const;

  // The packet the generator would emit as the k-th of flow `flow_index`
  // (exposed for tests; emission uses the same construction).
  [[nodiscard]] net::Packet make_packet(std::uint64_t flow_index, std::uint32_t seq) const;

 private:
  void emit_next();

  // Maps the global emission index to (flow, seq) per the emission order.
  [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> schedule_slot(std::uint64_t index) const;

  sim::Simulator& sim_;
  TrafficConfig config_;
  util::Rng rng_;
  EmitFn emit_;
  std::function<void()> on_done_;
  std::uint64_t emitted_ = 0;
};

}  // namespace sdnbuf::host

#include "host/traffic_gen.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdnbuf::host {

TrafficGenerator::TrafficGenerator(sim::Simulator& sim, TrafficConfig config,
                                   std::uint64_t rng_seed, EmitFn emit)
    : sim_(sim), config_(std::move(config)), rng_(rng_seed), emit_(std::move(emit)) {
  SDNBUF_CHECK_MSG(config_.rate_mbps > 0, "rate must be positive");
  SDNBUF_CHECK_MSG(config_.n_flows > 0 && config_.packets_per_flow > 0, "empty workload");
  SDNBUF_CHECK_MSG(config_.batch_size > 0, "batch size must be positive");
  SDNBUF_CHECK_MSG(emit_ != nullptr, "emit function required");
}

sim::SimTime TrafficGenerator::nominal_gap() const {
  return sim::transmission_time(config_.frame_size, config_.rate_mbps * 1e6);
}

net::Packet TrafficGenerator::make_packet(std::uint64_t flow_index, std::uint32_t seq) const {
  const net::Ipv4Address src_ip{
      static_cast<std::uint32_t>(config_.src_ip_base.value() + flow_index)};
  const auto src_port =
      static_cast<std::uint16_t>(config_.src_port_base + flow_index % 20000);
  // Deterministic protocol assignment: the first ceil(fraction * n) flows
  // spread evenly over the index space are TCP.
  const bool tcp =
      config_.tcp_flow_fraction > 0.0 &&
      static_cast<double>(flow_index % 100) < config_.tcp_flow_fraction * 100.0;
  net::Packet p =
      tcp ? net::make_tcp_packet(config_.src_mac, config_.dst_mac, src_ip, config_.dst_ip,
                                 src_port, config_.dst_port, net::kTcpAck | net::kTcpPsh,
                                 config_.frame_size)
          : net::make_udp_packet(config_.src_mac, config_.dst_mac, src_ip, config_.dst_ip,
                                 src_port, config_.dst_port, config_.frame_size);
  p.flow_id = config_.flow_id_base + flow_index;
  p.seq_in_flow = seq;
  return p;
}

std::pair<std::uint64_t, std::uint32_t> TrafficGenerator::schedule_slot(
    std::uint64_t index) const {
  if (config_.order == EmissionOrder::Sequential) {
    return {index / config_.packets_per_flow,
            static_cast<std::uint32_t>(index % config_.packets_per_flow)};
  }
  // CrossSequence: batches of `batch` flows; inside a batch, packets are
  // emitted round-robin over the batch's flows.
  const std::uint64_t batch = config_.batch_size;
  const std::uint64_t per_batch = batch * config_.packets_per_flow;
  const std::uint64_t batch_index = index / per_batch;
  const std::uint64_t slot = index % per_batch;
  // The tail batch holds fewer flows than batch_size; the round-robin width
  // must shrink with it or tail flows get early packets twice and their last
  // packets never (found by fuzz_scenarios: double-injection).
  const std::uint64_t first_flow = batch_index * batch;
  const std::uint64_t width = std::min<std::uint64_t>(batch, config_.n_flows - first_flow);
  const std::uint64_t round = slot / width;          // which packet of each flow
  const std::uint64_t flow_in_batch = slot % width;  // which flow of the batch
  return {first_flow + flow_in_batch, static_cast<std::uint32_t>(round)};
}

void TrafficGenerator::start(sim::SimTime start_delay, std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  sim_.schedule(start_delay, [this]() {
    sim::ScopedProfileTag tag{"traffic_gen"};
    emit_next();
  });
}

void TrafficGenerator::emit_next() {
  const auto [flow, seq] = schedule_slot(emitted_);
  net::Packet p = make_packet(flow, seq);
  p.created_at = sim_.now();
  emit_(p);
  ++emitted_;
  if (emitted_ >= total_packets()) {
    if (on_done_) on_done_();
    return;
  }
  sim::SimTime gap = nominal_gap();
  if (config_.spacing_jitter > 0) {
    gap = gap.scaled(rng_.uniform(1.0 - config_.spacing_jitter, 1.0 + config_.spacing_jitter));
  }
  sim_.schedule(gap, [this]() {
    sim::ScopedProfileTag tag{"traffic_gen"};
    emit_next();
  });
}

}  // namespace sdnbuf::host

#include "net/link.hpp"

#include <utility>

#include "util/check.hpp"

namespace sdnbuf::net {

double ByteTap::load_mbps(sim::SimTime start, sim::SimTime end) const {
  SDNBUF_CHECK(end > start);
  return static_cast<double>(bytes_) * 8.0 / (end - start).sec() / 1e6;
}

Link::Link(sim::Simulator& sim, std::string name, double bandwidth_bps,
           sim::SimTime propagation_delay)
    : sim_(sim),
      name_(std::move(name)),
      bandwidth_bps_(bandwidth_bps),
      propagation_delay_(propagation_delay) {
  SDNBUF_CHECK_MSG(bandwidth_bps_ > 0, "link bandwidth must be positive");
}

Link::SendResult Link::send_frame(std::uint64_t bytes, sim::EventFn on_delivered) {
  SDNBUF_CHECK_MSG(bytes > 0, "cannot send an empty frame");
  if (backlog_bytes_ + bytes > queue_limit_bytes_) {
    ++drops_;
    return SendResult::QueueDrop;
  }
  const sim::SimTime start =
      transmitter_free_at_ > sim_.now() ? transmitter_free_at_ : sim_.now();
  const sim::SimTime done_sending = start + sim::transmission_time(bytes, bandwidth_bps_);
  const sim::SimTime arrival = done_sending + propagation_delay_;
  // Fault-plane loss is decided at send time over the whole flight interval:
  // a frame that would be on the wire during any outage window is dropped,
  // covering in-flight loss without cancelling events. The frame never
  // occupies the transmitter, so the serialization clock is unaffected.
  if (faults_ != nullptr && faults_->down_during(start, arrival)) {
    ++fault_drops_;
    return SendResult::FaultDrop;
  }
  tap_.record(bytes);
  backlog_bytes_ += bytes;
  transmitter_free_at_ = done_sending;
  // The backlog counts bytes not yet clocked onto the wire.
  sim_.schedule_at(done_sending, [this, bytes]() {
    SDNBUF_CHECK(backlog_bytes_ >= bytes);
    backlog_bytes_ -= bytes;
  });
  // Wrapping the callback in a profile tag costs a heap allocation (an
  // EventFn nested inside an EventFn overflows the small buffer), so the
  // per-link attribution wrapper only exists when the receiving simulator
  // actually has a profile sink; otherwise the callback schedules as-is,
  // allocation-free. The tag reads name_ at delivery time; the link
  // outlives every in-flight frame and the name is immutable after setup.
  sim::Simulator& receiver = engine_ == nullptr ? sim_ : engine_->shard(to_shard_);
  sim::EventFn event;
  if (receiver.profile_sink() != nullptr) {
    event = [this, on_delivered = std::move(on_delivered)]() mutable {
      sim::ScopedProfileTag tag{name_.c_str()};
      if (on_delivered) on_delivered();
    };
  } else if (on_delivered) {
    event = std::move(on_delivered);
  } else {
    event = []() {};  // keep the delivery event so the sequence is unchanged
  }
  if (engine_ == nullptr) {
    sim_.schedule_at(arrival, std::move(event));
  } else {
    engine_->post(from_shard_, to_shard_, arrival, std::move(event));
  }
  return SendResult::Sent;
}

}  // namespace sdnbuf::net

#include "net/address.hpp"

#include <cstdio>

namespace sdnbuf::net {

MacAddress MacAddress::from_index(std::uint16_t index) {
  return MacAddress{{0x02, 0x00, 0x00, 0x00, static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index)}};
}

std::optional<MacAddress> MacAddress::parse(const std::string& text) {
  std::array<unsigned, 6> v{};
  char extra = 0;
  const int n = std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x%c", &v[0], &v[1], &v[2], &v[3],
                            &v[4], &v[5], &extra);
  if (n != 6) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (v[i] > 0xff) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>(v[i]);
  }
  return MacAddress{octets};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::uint64_t MacAddress::to_u64() const {
  std::uint64_t v = 0;
  for (auto o : octets_) v = (v << 8) | o;
  return v;
}

std::optional<Ipv4Address> Ipv4Address::parse(const std::string& text) {
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  char extra = 0;
  const int n = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return from_octets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value_ >> 24 & 0xff, value_ >> 16 & 0xff,
                value_ >> 8 & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace sdnbuf::net

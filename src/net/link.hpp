// Point-to-point unidirectional link with FIFO serialization.
//
// A link has a bandwidth and a propagation delay. Transmissions serialize:
// a frame starts when the transmitter becomes free, takes bytes*8/bandwidth
// to clock out, then arrives after the propagation delay. An optional
// transmit-queue byte limit models NIC ring exhaustion (drops are counted).
//
// `ByteTap` is the tcpdump stand-in: it observes every transmission on a
// link and accumulates bytes/frames so experiments can report link load in
// Mbps per direction, exactly as the paper measures control-path load.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/link_fault.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sdnbuf::net {

class ByteTap {
 public:
  void record(std::uint64_t bytes) {
    bytes_ += bytes;
    ++frames_;
  }

  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }

  // Average load over [start, end] in Mbps.
  [[nodiscard]] double load_mbps(sim::SimTime start, sim::SimTime end) const;

  void reset() {
    bytes_ = 0;
    frames_ = 0;
  }

 private:
  std::uint64_t bytes_ = 0;
  std::uint64_t frames_ = 0;
};

class Link {
 public:
  Link(sim::Simulator& sim, std::string name, double bandwidth_bps,
       sim::SimTime propagation_delay);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  enum class SendResult : std::uint8_t {
    Sent,       // frame scheduled for delivery
    QueueDrop,  // transmit queue byte limit exceeded
    FaultDrop,  // link down for part of the frame's flight interval
  };

  // Queues `bytes` for transmission; `on_delivered` fires at the receiver
  // once the last bit has propagated. Returns false (and counts a drop)
  // if the transmit queue byte limit would be exceeded or the link's fault
  // schedule has it down during the frame's flight. `on_delivered` is a
  // move-only sim::EventFn so the per-hop path schedules without a heap
  // allocation for typical captures.
  bool send(std::uint64_t bytes, sim::EventFn on_delivered) {
    return send_frame(bytes, std::move(on_delivered)) == SendResult::Sent;
  }

  // As send(), but distinguishes the drop cause — callers that account
  // per-packet fates (egress scheduler, fabric injection) need to know
  // whether a lost frame died to the fault plane or to queue exhaustion.
  SendResult send_frame(std::uint64_t bytes, sim::EventFn on_delivered);

  // Marks this link as a shard-crossing edge: the transmitter lives on
  // shard `from` of `engine` (whose Simulator must be this link's `sim`),
  // the receiver on shard `to`. Deliveries then travel through the engine's
  // mailboxes instead of the local event queue; serialization, backlog and
  // tap accounting stay on the transmitter's shard.
  void set_shard_crossing(sim::ShardedSimulator* engine, unsigned from, unsigned to) {
    engine_ = engine;
    from_shard_ = from;
    to_shard_ = to;
  }
  [[nodiscard]] bool shard_crossing() const { return engine_ != nullptr; }

  // Attaches a fault schedule (owned by the caller, may be null). The
  // zero-schedule path is byte-identical to a link without one.
  void set_fault_schedule(const LinkFaultSchedule* faults) { faults_ = faults; }
  [[nodiscard]] const LinkFaultSchedule* fault_schedule() const { return faults_; }

  // Is the link up at instant `t` under its fault schedule?
  [[nodiscard]] bool up_at(sim::SimTime t) const {
    return faults_ == nullptr || !faults_->down_at(t);
  }

  // Caps the untransmitted backlog; unlimited by default.
  void set_queue_limit_bytes(std::uint64_t limit) { queue_limit_bytes_ = limit; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double bandwidth_bps() const { return bandwidth_bps_; }
  [[nodiscard]] sim::SimTime propagation_delay() const { return propagation_delay_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }
  [[nodiscard]] std::uint64_t backlog_bytes() const { return backlog_bytes_; }

  [[nodiscard]] ByteTap& tap() { return tap_; }
  [[nodiscard]] const ByteTap& tap() const { return tap_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  double bandwidth_bps_;
  sim::SimTime propagation_delay_;
  sim::SimTime transmitter_free_at_;
  std::uint64_t queue_limit_bytes_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t fault_drops_ = 0;
  const LinkFaultSchedule* faults_ = nullptr;
  sim::ShardedSimulator* engine_ = nullptr;
  unsigned from_shard_ = 0;
  unsigned to_shard_ = 0;
  ByteTap tap_;
};

// A duplex link: two independent unidirectional channels sharing a name.
class DuplexLink {
 public:
  DuplexLink(sim::Simulator& sim, const std::string& name, double bandwidth_bps,
             sim::SimTime propagation_delay)
      : forward_(sim, name + ":fwd", bandwidth_bps, propagation_delay),
        reverse_(sim, name + ":rev", bandwidth_bps, propagation_delay) {}

  // Shard-crossing duplex link: each half schedules on its transmitter's
  // shard simulator. Call set_shard_crossing to route deliveries.
  DuplexLink(sim::Simulator& forward_sim, sim::Simulator& reverse_sim, const std::string& name,
             double bandwidth_bps, sim::SimTime propagation_delay)
      : forward_(forward_sim, name + ":fwd", bandwidth_bps, propagation_delay),
        reverse_(reverse_sim, name + ":rev", bandwidth_bps, propagation_delay) {}

  // Declares the duplex pair a shard-crossing edge: forward() transmits from
  // shard `a` to shard `b`, reverse() the other way.
  void set_shard_crossing(sim::ShardedSimulator* engine, unsigned a, unsigned b) {
    forward_.set_shard_crossing(engine, a, b);
    reverse_.set_shard_crossing(engine, b, a);
  }

  [[nodiscard]] Link& forward() { return forward_; }
  [[nodiscard]] Link& reverse() { return reverse_; }

  // Both directions fail together: a physical link outage takes down the
  // whole duplex pair.
  void set_fault_schedule(const LinkFaultSchedule* faults) {
    forward_.set_fault_schedule(faults);
    reverse_.set_fault_schedule(faults);
  }

 private:
  Link forward_;
  Link reverse_;
};

}  // namespace sdnbuf::net

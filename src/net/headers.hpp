// Byte-accurate protocol header codecs: Ethernet II, IPv4, UDP, TCP.
//
// These are real wire encodings (big-endian, with IPv4 header checksum), so
// the bytes a switch copies into an OpenFlow `packet_in` and the bytes the
// controller parses are the genuine article — message sizes, the quantity
// the paper's analysis hinges on, are therefore exact.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/address.hpp"

namespace sdnbuf::net {

// EtherType values used by the testbed.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

// IP protocol numbers.
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

// TCP flag bits.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = kEtherTypeIpv4;

  void encode(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static std::optional<EthernetHeader> decode(std::span<const std::uint8_t> in);

  bool operator==(const EthernetHeader&) const = default;
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // IP header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  Ipv4Address src;
  Ipv4Address dst;

  // Encodes with a correct header checksum.
  void encode(std::vector<std::uint8_t>& out) const;
  // Decodes and verifies the checksum; nullopt on truncation/corruption.
  [[nodiscard]] static std::optional<Ipv4Header> decode(std::span<const std::uint8_t> in);

  bool operator==(const Ipv4Header&) const = default;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = kSize;  // UDP header + payload

  void encode(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static std::optional<UdpHeader> decode(std::span<const std::uint8_t> in);

  bool operator==(const UdpHeader&) const = default;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  void encode(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static std::optional<TcpHeader> decode(std::span<const std::uint8_t> in);

  bool operator==(const TcpHeader&) const = default;
};

// RFC 1071 ones-complement checksum over `data` (for the IPv4 header).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace sdnbuf::net

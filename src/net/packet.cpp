#include "net/packet.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdnbuf::net {

FlowKey Packet::flow_key() const {
  FlowKey key;
  key.src_ip = ip.src;
  key.dst_ip = ip.dst;
  key.protocol = ip.protocol;
  if (ip.protocol == kIpProtoUdp) {
    key.src_port = udp.src_port;
    key.dst_port = udp.dst_port;
  } else if (ip.protocol == kIpProtoTcp) {
    key.src_port = tcp.src_port;
    key.dst_port = tcp.dst_port;
  }
  return key;
}

std::size_t Packet::header_size() const {
  std::size_t n = EthernetHeader::kSize + Ipv4Header::kSize;
  if (ip.protocol == kIpProtoUdp) n += UdpHeader::kSize;
  if (ip.protocol == kIpProtoTcp) n += TcpHeader::kSize;
  return n;
}

void Packet::serialize_into(std::size_t max_bytes, std::vector<std::uint8_t>& out) const {
  out.clear();
  const std::size_t want = std::min<std::size_t>(frame_size, max_bytes);
  out.reserve(want);
  eth.encode(out);
  ip.encode(out);
  if (ip.protocol == kIpProtoUdp) {
    udp.encode(out);
  } else if (ip.protocol == kIpProtoTcp) {
    tcp.encode(out);
  }
  if (out.size() > want) {
    out.resize(want);  // truncated capture (miss_send_len shorter than headers)
  } else {
    out.insert(out.end(), want - out.size(), 0);  // zero payload
  }
}

std::vector<std::uint8_t> Packet::serialize(std::size_t max_bytes) const {
  std::vector<std::uint8_t> out;
  serialize_into(max_bytes, out);
  return out;
}

std::optional<Packet> Packet::parse(std::span<const std::uint8_t> wire,
                                    std::uint32_t total_frame_size) {
  auto eth = EthernetHeader::decode(wire);
  if (!eth) return std::nullopt;
  Packet p;
  p.eth = *eth;
  p.frame_size = total_frame_size;
  if (eth->ethertype != kEtherTypeIpv4) return p;  // non-IP: L2 headers only
  auto ip = Ipv4Header::decode(wire.subspan(EthernetHeader::kSize));
  if (!ip) return std::nullopt;
  p.ip = *ip;
  const auto l4 = wire.subspan(EthernetHeader::kSize + Ipv4Header::kSize);
  if (ip->protocol == kIpProtoUdp) {
    auto udp = UdpHeader::decode(l4);
    if (!udp) return std::nullopt;
    p.udp = *udp;
  } else if (ip->protocol == kIpProtoTcp) {
    auto tcp = TcpHeader::decode(l4);
    if (!tcp) return std::nullopt;
    p.tcp = *tcp;
  }
  return p;
}

namespace {

Packet make_base(const MacAddress& src_mac, const MacAddress& dst_mac, const Ipv4Address& src_ip,
                 const Ipv4Address& dst_ip, std::uint8_t protocol, std::uint32_t frame_size) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = dst_mac;
  p.eth.ethertype = kEtherTypeIpv4;
  p.ip.src = src_ip;
  p.ip.dst = dst_ip;
  p.ip.protocol = protocol;
  p.frame_size = frame_size;
  p.ip.total_length = static_cast<std::uint16_t>(frame_size - EthernetHeader::kSize);
  return p;
}

}  // namespace

Packet make_udp_packet(const MacAddress& src_mac, const MacAddress& dst_mac,
                       const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint32_t frame_size) {
  Packet p = make_base(src_mac, dst_mac, src_ip, dst_ip, kIpProtoUdp, frame_size);
  SDNBUF_CHECK_MSG(frame_size >= p.header_size(), "frame too small for UDP headers");
  p.udp.src_port = src_port;
  p.udp.dst_port = dst_port;
  p.udp.length = static_cast<std::uint16_t>(frame_size - EthernetHeader::kSize - Ipv4Header::kSize);
  return p;
}

Packet make_tcp_packet(const MacAddress& src_mac, const MacAddress& dst_mac,
                       const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                       std::uint16_t src_port, std::uint16_t dst_port, std::uint8_t flags,
                       std::uint32_t frame_size) {
  Packet p = make_base(src_mac, dst_mac, src_ip, dst_ip, kIpProtoTcp, frame_size);
  SDNBUF_CHECK_MSG(frame_size >= p.header_size(), "frame too small for TCP headers");
  p.tcp.src_port = src_port;
  p.tcp.dst_port = dst_port;
  p.tcp.flags = flags;
  return p;
}

}  // namespace sdnbuf::net

#include "net/flow_key.hpp"

#include <cstdio>

namespace sdnbuf::net {

std::uint64_t FlowKey::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(src_ip.value(), 4);
  mix(dst_ip.value(), 4);
  mix(src_port, 2);
  mix(dst_port, 2);
  mix(protocol, 1);
  return h;
}

std::string FlowKey::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s:%u->%s:%u/%u", src_ip.to_string().c_str(), src_port,
                dst_ip.to_string().c_str(), dst_port, protocol);
  return buf;
}

}  // namespace sdnbuf::net

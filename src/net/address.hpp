// Network addresses: 48-bit MAC and 32-bit IPv4, value types with parsing,
// formatting and ordering (usable as map keys).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace sdnbuf::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  // Builds a locally administered unicast MAC from a small host index:
  // 02:00:00:00:xx:yy.
  [[nodiscard]] static MacAddress from_index(std::uint16_t index);

  // Parses "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<MacAddress> parse(const std::string& text);

  [[nodiscard]] static constexpr MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  [[nodiscard]] bool is_broadcast() const { return *this == broadcast(); }
  [[nodiscard]] bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint64_t to_u64() const;

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order_value) : value_(host_order_value) {}

  // Parses dotted quad "a.b.c.d"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(const std::string& text);

  [[nodiscard]] static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                                         std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | d};
  }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace sdnbuf::net

// The 5-tuple flow identifier.
//
// The paper's flow-granularity buffer keys its shared `buffer_id` on
// (src_ip, src_port, dst_ip, dst_port, protocol); this type is that key.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/address.hpp"

namespace sdnbuf::net {

struct FlowKey {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  auto operator<=>(const FlowKey&) const = default;

  // Stable 64-bit FNV-1a hash — also the basis of the flow-granularity
  // buffer_id derivation (Algorithm 1).
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace sdnbuf::net

template <>
struct std::hash<sdnbuf::net::FlowKey> {
  std::size_t operator()(const sdnbuf::net::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};

#include "net/headers.hpp"

#include "util/byte_order.hpp"

namespace sdnbuf::net {

using util::get_be16;
using util::get_be32;
using util::put_be16;
using util::put_be32;

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void EthernetHeader::encode(std::vector<std::uint8_t>& out) const {
  out.insert(out.end(), dst.octets().begin(), dst.octets().end());
  out.insert(out.end(), src.octets().begin(), src.octets().end());
  put_be16(out, ethertype);
}

std::optional<EthernetHeader> EthernetHeader::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  EthernetHeader h;
  std::array<std::uint8_t, 6> mac{};
  std::copy(in.begin(), in.begin() + 6, mac.begin());
  h.dst = MacAddress{mac};
  std::copy(in.begin() + 6, in.begin() + 12, mac.begin());
  h.src = MacAddress{mac};
  h.ethertype = get_be16(in, 12);
  return h;
}

void Ipv4Header::encode(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(dscp);
  put_be16(out, total_length);
  put_be16(out, identification);
  put_be16(out, 0x4000);  // flags: DF, fragment offset 0
  out.push_back(ttl);
  out.push_back(protocol);
  put_be16(out, 0);  // checksum placeholder
  put_be32(out, src.value());
  put_be32(out, dst.value());
  const std::uint16_t csum =
      internet_checksum(std::span<const std::uint8_t>(out.data() + start, kSize));
  out[start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(csum);
}

std::optional<Ipv4Header> Ipv4Header::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  if (in[0] != 0x45) return std::nullopt;  // only version 4, no options
  if (internet_checksum(in.subspan(0, kSize)) != 0) return std::nullopt;
  Ipv4Header h;
  h.dscp = in[1];
  h.total_length = get_be16(in, 2);
  h.identification = get_be16(in, 4);
  h.ttl = in[8];
  h.protocol = in[9];
  h.src = Ipv4Address{get_be32(in, 12)};
  h.dst = Ipv4Address{get_be32(in, 16)};
  return h;
}

void UdpHeader::encode(std::vector<std::uint8_t>& out) const {
  put_be16(out, src_port);
  put_be16(out, dst_port);
  put_be16(out, length);
  put_be16(out, 0);  // checksum optional in IPv4; 0 == not computed
}

std::optional<UdpHeader> UdpHeader::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = get_be16(in, 0);
  h.dst_port = get_be16(in, 2);
  h.length = get_be16(in, 4);
  return h;
}

void TcpHeader::encode(std::vector<std::uint8_t>& out) const {
  put_be16(out, src_port);
  put_be16(out, dst_port);
  put_be32(out, seq);
  put_be32(out, ack);
  out.push_back(0x50);  // data offset 5 words
  out.push_back(flags);
  put_be16(out, window);
  put_be16(out, 0);  // checksum: not modelled (needs pseudo-header over payload)
  put_be16(out, 0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  if ((in[12] >> 4) != 5) return std::nullopt;  // options not supported
  TcpHeader h;
  h.src_port = get_be16(in, 0);
  h.dst_port = get_be16(in, 2);
  h.seq = get_be32(in, 4);
  h.ack = get_be32(in, 8);
  h.flags = in[13];
  h.window = get_be16(in, 14);
  return h;
}

}  // namespace sdnbuf::net

// The simulated packet.
//
// A `Packet` carries parsed headers plus a frame size; payload bytes are not
// materialized (they are zeros) but `serialize` produces the genuine
// on-the-wire prefix — what a switch copies into an OpenFlow `packet_in`
// data field, and what the controller parses back out.
//
// The trailing metadata block (flow id, sequence number, creation time) is
// simulator-side bookkeeping used by the metrics recorders; it does not
// exist on the wire and does not count toward the frame size.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/flow_key.hpp"
#include "net/headers.hpp"
#include "sim/time.hpp"

namespace sdnbuf::net {

// One INT-style per-hop telemetry record, appended by a switch at egress
// when its SwitchConfig::telemetry_int_depth is non-zero. The stack rides
// the packet's simulator metadata (not the wire), so it crosses shard
// boundaries by value with the packet — no shared mutable state.
struct HopStamp {
  std::uint64_t switch_id = 0;      // datapath id of the stamping switch
  std::uint16_t in_port = 0;        // ingress port the packet arrived on
  std::uint16_t out_port = 0;       // egress port chosen by the pipeline
  std::uint32_t queue_depth = 0;    // egress backlog (packets) at enqueue
  std::uint32_t buffer_units = 0;   // switch buffer-pool units in use
  // Shared-memory MMU sharing dynamics (DESIGN.md §16); both 0 when the
  // stamping switch runs without an MMU, so pre-MMU stamps are unchanged.
  std::uint32_t pool_cells = 0;       // shared-pool cells in use at egress
  std::uint32_t queue_threshold = 0;  // admission ceiling of this packet's
                                      // egress queue (cells; native cap
                                      // under StaticPartition)
  sim::SimTime arrived_at;          // switch ingress time
  sim::SimTime departed_at;         // egress enqueue time

  [[nodiscard]] sim::SimTime residence() const { return departed_at - arrived_at; }
};

struct Packet {
  EthernetHeader eth;
  Ipv4Header ip;
  // Exactly one of udp/tcp is meaningful, selected by ip.protocol.
  UdpHeader udp;
  TcpHeader tcp;

  // Total frame bytes on the wire (Ethernet header + IP packet). The paper
  // uses 1000-byte frames.
  std::uint32_t frame_size = 0;

  // --- Simulator metadata (not on the wire) ---
  std::uint64_t flow_id = 0;    // dense experiment-assigned flow index
  std::uint32_t seq_in_flow = 0;
  sim::SimTime created_at;      // when the source emitted the first bit
  std::uint16_t hops = 0;       // switches visited, against SwitchConfig::max_hops

  // INT telemetry (DESIGN.md §15): per-hop stamps, bounded by the stamping
  // switch's telemetry_int_depth. Empty — and never touched — when telemetry
  // is off, so the default packet copies exactly as before.
  std::vector<HopStamp> tstack;
  sim::SimTime hop_arrived_at;  // ingress time at the current switch (scratch)

  [[nodiscard]] FlowKey flow_key() const;

  // Serializes the first min(frame_size, max_bytes) wire bytes
  // (headers, then zero payload padding).
  [[nodiscard]] std::vector<std::uint8_t> serialize(std::size_t max_bytes) const;

  // Serializes into `out` (cleared first), reusing its capacity — the
  // hot-path variant for packet_in/packet_out data fields.
  void serialize_into(std::size_t max_bytes, std::vector<std::uint8_t>& out) const;

  // Parses headers back from wire bytes (e.g. a packet_in data field).
  // Frame size is taken from `total_frame_size` since the data field may be
  // a truncated prefix. Metadata fields are left default.
  [[nodiscard]] static std::optional<Packet> parse(std::span<const std::uint8_t> wire,
                                                   std::uint32_t total_frame_size);

  [[nodiscard]] std::size_t header_size() const;
};

// Builds a UDP packet with consistent length fields. `frame_size` must be at
// least the combined header size.
[[nodiscard]] Packet make_udp_packet(const MacAddress& src_mac, const MacAddress& dst_mac,
                                     const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                                     std::uint16_t src_port, std::uint16_t dst_port,
                                     std::uint32_t frame_size);

// Builds a TCP packet (flags per `flags`, e.g. kTcpSyn).
[[nodiscard]] Packet make_tcp_packet(const MacAddress& src_mac, const MacAddress& dst_mac,
                                     const Ipv4Address& src_ip, const Ipv4Address& dst_ip,
                                     std::uint16_t src_port, std::uint16_t dst_port,
                                     std::uint8_t flags, std::uint32_t frame_size);

}  // namespace sdnbuf::net

#include "net/link_fault.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdnbuf::net {

void LinkFaultSchedule::add_outage(sim::SimTime start, sim::SimTime end) {
  SDNBUF_CHECK_MSG(start < end, "outage window must have positive length");
  OutageWindow w{start, end};
  // Find the insertion point, then absorb every window the new one overlaps
  // or touches.
  auto first = std::lower_bound(
      windows_.begin(), windows_.end(), w,
      [](const OutageWindow& a, const OutageWindow& b) { return a.start < b.start; });
  while (first != windows_.begin() && std::prev(first)->end >= w.start) --first;
  auto last = first;
  while (last != windows_.end() && last->start <= w.end) {
    w.start = std::min(w.start, last->start);
    w.end = std::max(w.end, last->end);
    ++last;
  }
  windows_.erase(first, last);
  windows_.insert(std::lower_bound(windows_.begin(), windows_.end(), w,
                                   [](const OutageWindow& a, const OutageWindow& b) {
                                     return a.start < b.start;
                                   }),
                  w);
}

LinkFaultSchedule LinkFaultSchedule::flap(std::uint64_t seed, sim::SimTime start,
                                          sim::SimTime horizon, double mean_up_s,
                                          double mean_down_s) {
  SDNBUF_CHECK_MSG(mean_up_s > 0 && mean_down_s > 0, "flap holding times must be positive");
  LinkFaultSchedule schedule;
  util::Rng rng{seed};
  sim::SimTime t = start;
  while (t < horizon) {
    t += sim::SimTime::from_seconds(rng.exponential(mean_up_s));
    if (t >= horizon) break;
    sim::SimTime down_until = t + sim::SimTime::from_seconds(rng.exponential(mean_down_s));
    if (down_until > horizon) down_until = horizon;
    if (t < down_until) schedule.add_outage(t, down_until);
    t = down_until;
  }
  return schedule;
}

bool LinkFaultSchedule::down_at(sim::SimTime t) const { return down_during(t, t); }

bool LinkFaultSchedule::down_during(sim::SimTime from, sim::SimTime to) const {
  // Only the window with the largest start <= `to` can overlap [from, to]:
  // earlier windows end before it starts (sorted + disjoint).
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), to,
      [](sim::SimTime t, const OutageWindow& w) { return t < w.start; });
  if (it == windows_.begin()) return false;
  return std::prev(it)->end > from;
}

sim::SimTime LinkFaultSchedule::last_recovery() const {
  return windows_.empty() ? sim::SimTime::zero() : windows_.back().end;
}

}  // namespace sdnbuf::net

#include "verify/scenario_gen.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace sdnbuf::verify {

Scenario sample_scenario(std::uint64_t seed, bool force_faults) {
  // Decorrelate the sampling stream from the experiment's own seeded
  // streams (which derive from `seed` directly).
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5ca1ab1e);
  Scenario s;
  s.seed = seed;
  s.rate_mbps = rng.uniform(10.0, 95.0);
  s.frame_size = static_cast<std::uint32_t>(200 + rng.next_below(1201));
  s.n_flows = 10 + rng.next_below(111);
  s.packets_per_flow = static_cast<std::uint32_t>(1 + rng.next_below(6));
  s.order = rng.next_below(2) == 0 ? host::EmissionOrder::Sequential
                                   : host::EmissionOrder::CrossSequence;
  s.batch_size = static_cast<std::uint32_t>(2 + rng.next_below(7));
  constexpr double kTcpFractions[] = {0.0, 0.25, 0.5, 1.0};
  s.tcp_flow_fraction = kTcpFractions[rng.next_below(4)];
  constexpr std::size_t kCapacities[] = {8, 32, 256};
  s.buffer_capacity = kCapacities[rng.next_below(3)];
  // Stress corners, each enabled for a fraction of scenarios.
  if (rng.next_double() < 0.25) s.flow_table_capacity = 16 + rng.next_below(49);
  if (rng.next_double() < 0.20) s.piggyback_buffer_id = true;
  if (rng.next_double() < 0.25) s.drop_pkt_in_probability = rng.uniform(0.02, 0.15);
  if (rng.next_double() < 0.20) {
    s.stats_poll_interval = sim::SimTime::milliseconds(50 + rng.next_below(200));
  }
  // Channel fault plane corners. Draw order is fixed so the same seed keeps
  // producing the same base scenario regardless of which corners fire.
  if (rng.next_double() < 0.30 || force_faults) {
    s.chan_loss_to_controller = rng.uniform(0.02, 0.25);
    s.chan_loss_to_switch = rng.uniform(0.02, 0.25);
  }
  if (rng.next_double() < 0.15) s.chan_duplicate_prob = rng.uniform(0.01, 0.10);
  if (rng.next_double() < 0.15) {
    s.chan_extra_delay = sim::SimTime::microseconds(100 + rng.next_below(1901));
  }
  if (rng.next_double() < 0.25) {
    // An outage needs liveness to be observable; enable echo and pick a mode.
    s.outage_start = sim::SimTime::milliseconds(100 + rng.next_below(301));
    s.outage_len = sim::SimTime::milliseconds(200 + rng.next_below(801));
    s.echo_interval = sim::SimTime::milliseconds(50 + rng.next_below(51));
    s.fail_mode = rng.next_below(2) == 0 ? sw::ConnectionFailMode::FailSecure
                                         : sw::ConnectionFailMode::FailStandalone;
  } else if (rng.next_double() < 0.10) {
    // Echo-only scenario: liveness traffic over a healthy (or lossy) channel.
    s.echo_interval = sim::SimTime::milliseconds(50 + rng.next_below(101));
  }
  return s;
}

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " rate=" << rate_mbps << "Mbps frame=" << frame_size << " flows="
     << n_flows << "x" << packets_per_flow << " order="
     << (order == host::EmissionOrder::Sequential ? "seq" : "cross") << " batch=" << batch_size
     << " tcp=" << tcp_flow_fraction << " buf_cap=" << buffer_capacity << " table_cap="
     << flow_table_capacity << " piggyback=" << piggyback_buffer_id << " drop_p="
     << drop_pkt_in_probability << " poll=" << stats_poll_interval.to_string();
  if (has_channel_faults() || echo_interval > sim::SimTime::zero()) {
    os << " chan_loss=" << chan_loss_to_controller << '/' << chan_loss_to_switch
       << " chan_dup=" << chan_duplicate_prob << " chan_jitter=" << chan_extra_delay.to_string()
       << " outage=" << outage_start.to_string() << '+' << outage_len.to_string()
       << " echo=" << echo_interval.to_string() << " fail_mode=" << sw::fail_mode_name(fail_mode);
  }
  return os.str();
}

core::ExperimentConfig Scenario::experiment_config(sw::BufferMode mode) const {
  core::ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.buffer_capacity = buffer_capacity;
  cfg.rate_mbps = rate_mbps;
  cfg.frame_size = frame_size;
  cfg.n_flows = n_flows;
  cfg.packets_per_flow = packets_per_flow;
  cfg.order = order;
  cfg.batch_size = batch_size;
  cfg.tcp_flow_fraction = tcp_flow_fraction;
  cfg.seed = seed;
  cfg.testbed.switch_config.flow_table_capacity = flow_table_capacity;
  cfg.testbed.controller_config.piggyback_buffer_id = piggyback_buffer_id;
  cfg.testbed.controller_config.drop_pkt_in_probability = drop_pkt_in_probability;
  cfg.testbed.controller_config.stats_poll_interval = stats_poll_interval;
  cfg.testbed.fault_profile.loss_to_controller = chan_loss_to_controller;
  cfg.testbed.fault_profile.loss_to_switch = chan_loss_to_switch;
  cfg.testbed.fault_profile.duplicate_to_controller = chan_duplicate_prob;
  cfg.testbed.fault_profile.duplicate_to_switch = chan_duplicate_prob;
  cfg.testbed.fault_profile.max_extra_delay = chan_extra_delay;
  if (outage_len > sim::SimTime::zero()) {
    cfg.testbed.fault_profile.outages.push_back({outage_start, outage_start + outage_len});
  }
  cfg.testbed.switch_config.echo_interval = echo_interval;
  cfg.testbed.switch_config.fail_mode = fail_mode;
  return cfg;
}

ScenarioOutcome run_scenario(const Scenario& scenario) {
  ScenarioOutcome out;
  out.scenario = scenario;
  constexpr sw::BufferMode kModes[] = {sw::BufferMode::NoBuffer,
                                       sw::BufferMode::PacketGranularity,
                                       sw::BufferMode::FlowGranularity};
  for (std::size_t i = 0; i < 3; ++i) {
    InvariantRegistry registry;
    core::ExperimentConfig cfg = scenario.experiment_config(kModes[i]);
    cfg.observer = &registry;

    ModeOutcome& mo = out.modes[i];
    mo.mode = kModes[i];
    mo.result = core::run_experiment(cfg);
    // A drained run must have delivered every payload exactly once; an
    // undrained one (overload, fault injection) only has to account for
    // every payload. With channel faults a duplicated delivery can mask a
    // lost one in the sink's raw count, so "drained" no longer implies
    // per-payload delivery — conservation is the contract there.
    registry.finalize(
        /*expect_all_delivered=*/mo.result.drained && !scenario.has_channel_faults());
    mo.violations = registry.total_violations();
    mo.events = registry.events_observed();
    mo.report = registry.report();
    mo.delivered = registry.delivered_payloads();

    if (mo.events == 0) {
      out.failures.push_back(std::string(sw::buffer_mode_name(mo.mode)) +
                             ": observer saw no events (hooks unwired?)");
    }
    if (!registry.ok()) {
      out.failures.push_back(std::string(sw::buffer_mode_name(mo.mode)) + ": " + mo.report);
    }
  }

  // Cross-mechanism equivalence: when every mechanism drained, all three
  // must have delivered the same payload multiset — buffering strategy must
  // not change *what* arrives, only when. Under channel faults the
  // mechanisms legitimately diverge (different messages get lost), so only
  // per-mode conservation is required there.
  const bool all_drained = out.modes[0].result.drained && out.modes[1].result.drained &&
                           out.modes[2].result.drained;
  if (all_drained && !scenario.has_channel_faults()) {
    for (std::size_t i = 1; i < 3; ++i) {
      if (out.modes[i].delivered != out.modes[0].delivered) {
        out.failures.push_back(std::string(sw::buffer_mode_name(out.modes[i].mode)) +
                               " delivered a different payload multiset than " +
                               sw::buffer_mode_name(out.modes[0].mode) + " (" +
                               std::to_string(out.modes[i].delivered.size()) + " vs " +
                               std::to_string(out.modes[0].delivered.size()) + " deliveries)");
      }
    }
  }
  return out;
}

}  // namespace sdnbuf::verify

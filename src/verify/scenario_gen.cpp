#include "verify/scenario_gen.hpp"

#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "core/fabric_experiment.hpp"
#include "util/rng.hpp"

namespace sdnbuf::verify {

Scenario sample_scenario(std::uint64_t seed, bool force_faults, bool force_fabric,
                         bool force_link_faults, bool force_shards, bool force_telemetry,
                         bool force_mmu) {
  // Decorrelate the sampling stream from the experiment's own seeded
  // streams (which derive from `seed` directly).
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5ca1ab1e);
  Scenario s;
  s.seed = seed;
  s.rate_mbps = rng.uniform(10.0, 95.0);
  s.frame_size = static_cast<std::uint32_t>(200 + rng.next_below(1201));
  s.n_flows = 10 + rng.next_below(111);
  s.packets_per_flow = static_cast<std::uint32_t>(1 + rng.next_below(6));
  s.order = rng.next_below(2) == 0 ? host::EmissionOrder::Sequential
                                   : host::EmissionOrder::CrossSequence;
  s.batch_size = static_cast<std::uint32_t>(2 + rng.next_below(7));
  constexpr double kTcpFractions[] = {0.0, 0.25, 0.5, 1.0};
  s.tcp_flow_fraction = kTcpFractions[rng.next_below(4)];
  constexpr std::size_t kCapacities[] = {8, 32, 256};
  s.buffer_capacity = kCapacities[rng.next_below(3)];
  // Stress corners, each enabled for a fraction of scenarios.
  if (rng.next_double() < 0.25) s.flow_table_capacity = 16 + rng.next_below(49);
  if (rng.next_double() < 0.20) s.piggyback_buffer_id = true;
  if (rng.next_double() < 0.25) s.drop_pkt_in_probability = rng.uniform(0.02, 0.15);
  if (rng.next_double() < 0.20) {
    s.stats_poll_interval = sim::SimTime::milliseconds(50 + rng.next_below(200));
  }
  // Channel fault plane corners. Draw order is fixed so the same seed keeps
  // producing the same base scenario regardless of which corners fire.
  if (rng.next_double() < 0.30 || force_faults) {
    s.chan_loss_to_controller = rng.uniform(0.02, 0.25);
    s.chan_loss_to_switch = rng.uniform(0.02, 0.25);
  }
  if (rng.next_double() < 0.15) s.chan_duplicate_prob = rng.uniform(0.01, 0.10);
  if (rng.next_double() < 0.15) {
    s.chan_extra_delay = sim::SimTime::microseconds(100 + rng.next_below(1901));
  }
  if (rng.next_double() < 0.25) {
    // An outage needs liveness to be observable; enable echo and pick a mode.
    s.outage_start = sim::SimTime::milliseconds(100 + rng.next_below(301));
    s.outage_len = sim::SimTime::milliseconds(200 + rng.next_below(801));
    s.echo_interval = sim::SimTime::milliseconds(50 + rng.next_below(51));
    s.fail_mode = rng.next_below(2) == 0 ? sw::ConnectionFailMode::FailSecure
                                         : sw::ConnectionFailMode::FailStandalone;
  } else if (rng.next_double() < 0.10) {
    // Echo-only scenario: liveness traffic over a healthy (or lossy) channel.
    s.echo_interval = sim::SimTime::milliseconds(50 + rng.next_below(101));
  }
  // Fabric cross-check draws come LAST so enabling them never perturbs the
  // base scenario a seed maps to. The gate draw is always consumed; the
  // fault smoke (force_faults) keeps its run time by skipping fabrics.
  const bool want_fabric = rng.next_double() < 0.30;
  if ((want_fabric || force_fabric || force_link_faults || force_shards) && !force_faults) {
    s.fabric_kind = static_cast<unsigned>(rng.next_below(3));
    s.fabric_switches = static_cast<unsigned>(2 + rng.next_below(7));  // 2..8
    s.fabric_seed = rng.next_u64();
    s.fabric_pattern = static_cast<unsigned>(rng.next_below(3));
    s.fabric_full_path = rng.next_below(2) == 1;
  }
  // Data-plane link-fault draws come after the fabric draws (again: enabling
  // them never perturbs the base scenario or the fabric shape a seed maps
  // to). The gate draw is always consumed.
  const bool want_link_faults = rng.next_double() < 0.25;
  if (s.has_fabric() && (want_link_faults || force_link_faults)) {
    s.fabric_flap_mean_up_s = rng.uniform(0.04, 0.12);
    s.fabric_flap_mean_down_s = rng.uniform(0.005, 0.025);
    s.fabric_fault_seed = rng.next_u64();
  }
  // Sharded-engine draws come last of all, same append-only discipline: a
  // seed's scenario (including its fabric and fault shapes) is unchanged by
  // the sharding dimension existing. The gate draw is always consumed.
  const bool want_shards = rng.next_double() < 0.30;
  if (s.has_fabric() && (want_shards || force_shards)) {
    s.fabric_shards = static_cast<unsigned>(2 + rng.next_below(3));  // 2..4
  }
  // Telemetry draws come after everything else (append-only discipline: the
  // telemetry dimension existing never changes the scenario a seed already
  // maps to). The gate draw is always consumed.
  const bool want_telemetry = rng.next_double() < 0.30;
  if (want_telemetry || force_telemetry) {
    s.telemetry = true;
    s.telemetry_int_depth = static_cast<unsigned>(rng.next_below(9));  // 0..8 hops
    constexpr std::uint32_t kPeriods[] = {0, 1, 4, 16, 64};
    s.telemetry_sample_period = kPeriods[rng.next_below(5)];
  }
  // Shared-memory MMU draws come after the telemetry draws (append-only
  // discipline: the MMU dimension existing never changes the scenario a seed
  // already maps to). The gate draw is always consumed. Pool sizes span
  // plentiful (nothing rejected) down to starved (the dynamic policies'
  // thresholds bite); alphas span conservative to aggressive sharing.
  const bool want_mmu = rng.next_double() < 0.30;
  if (want_mmu || force_mmu) {
    s.mmu = true;
    s.mmu_policy = static_cast<unsigned>(rng.next_below(3));
    constexpr std::uint64_t kPools[] = {512, 2048, 8192};
    s.mmu_pool_cells = kPools[rng.next_below(3)];
    constexpr double kAlphas[] = {0.25, 0.5, 1.0, 2.0};
    s.mmu_alpha = kAlphas[rng.next_below(4)];
  }
  return s;
}

// Deterministic small fabric from the scenario's fabric draws. Every shape
// satisfies Topology::validate() by construction.
static topo::Topology build_fabric(const Scenario& s) {
  util::Rng rng(s.fabric_seed * 0x2545f4914f6cdd1dULL + 0xfab41c);
  switch (s.fabric_kind) {
    case 0: {  // small leaf-spine: 3..5 switches
      const unsigned spines = static_cast<unsigned>(1 + rng.next_below(2));
      const unsigned leaves = static_cast<unsigned>(2 + rng.next_below(2));
      const unsigned hosts = static_cast<unsigned>(1 + rng.next_below(2));
      return topo::make_leaf_spine(spines, leaves, hosts);
    }
    case 1:  // smallest fat-tree: 5 switches, 2 hosts
      return topo::make_fat_tree(2);
    default: {  // random connected switch graph with randomly homed hosts
      const unsigned n_sw = s.fabric_switches;
      const unsigned n_hosts = static_cast<unsigned>(2 + rng.next_below(3));
      std::vector<std::pair<unsigned, unsigned>> edges;
      std::set<std::pair<unsigned, unsigned>> seen;
      // Hosts are node ids 0..n_hosts-1, switches n_hosts..n_hosts+n_sw-1.
      const auto sw_id = [n_hosts](unsigned i) { return n_hosts + i; };
      for (unsigned h = 0; h < n_hosts; ++h) {
        edges.emplace_back(h, sw_id(static_cast<unsigned>(rng.next_below(n_sw))));
      }
      // Spanning tree keeps the switch graph connected; extras add loops
      // (safe under topology routing, which never floods).
      for (unsigned i = 1; i < n_sw; ++i) {
        const unsigned parent = static_cast<unsigned>(rng.next_below(i));
        edges.emplace_back(sw_id(parent), sw_id(i));
        seen.insert({parent, i});
      }
      const std::uint64_t extras = rng.next_below(n_sw);
      for (std::uint64_t e = 0; e < extras; ++e) {
        unsigned a = static_cast<unsigned>(rng.next_below(n_sw));
        unsigned b = static_cast<unsigned>(rng.next_below(n_sw));
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        if (!seen.insert({a, b}).second) continue;
        edges.emplace_back(sw_id(a), sw_id(b));
      }
      return topo::from_edge_list(n_hosts, n_sw, edges);
    }
  }
}

// Runs the fabric cross-check under all three buffer mechanisms with one
// InvariantRegistry per switch, appending any failures to `out`.
static void run_fabric_check(const Scenario& scenario, ScenarioOutcome& out) {
  const topo::Topology topology = build_fabric(scenario);
  constexpr sw::BufferMode kModes[] = {sw::BufferMode::NoBuffer,
                                       sw::BufferMode::PacketGranularity,
                                       sw::BufferMode::FlowGranularity};
  constexpr host::TrafficPattern kPatterns[] = {host::TrafficPattern::AllToAll,
                                                host::TrafficPattern::Permutation,
                                                host::TrafficPattern::Incast};
  std::array<std::vector<PayloadId>, 3> delivered;
  std::array<bool, 3> drained{};
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<std::unique_ptr<InvariantRegistry>> registries;
    std::vector<InvariantObserver*> observers;
    for (unsigned sw_i = 0; sw_i < topology.n_switches(); ++sw_i) {
      registries.push_back(std::make_unique<InvariantRegistry>());
      if (scenario.fabric_full_path) registries.back()->set_allow_proactive_installs(true);
      // Route repair after a flap can send a rerouted packet back through a
      // switch it already transited; that revisit is legal under link faults.
      if (scenario.has_link_faults()) registries.back()->set_allow_revisits(true);
      observers.push_back(registries.back().get());
    }

    core::FabricExperimentConfig cfg;
    cfg.topology = topology;
    cfg.routing = scenario.fabric_full_path ? core::FabricRouting::TopologyFullPath
                                            : core::FabricRouting::TopologyPerHop;
    cfg.mode = kModes[i];
    cfg.buffer_capacity = scenario.buffer_capacity;
    cfg.pattern = kPatterns[scenario.fabric_pattern % 3];
    cfg.duration_s = 0.15;
    cfg.flow_arrival_per_s = 150.0;
    cfg.min_packets = 1;
    cfg.max_packets = 6;
    cfg.seed = scenario.seed;
    cfg.observers = observers;
    obs::FabricObservatory obsy;
    if (scenario.has_telemetry()) {
      cfg.observatory = &obsy;
      cfg.fabric.switch_config.telemetry_int_depth = scenario.telemetry_int_depth;
      cfg.fabric.switch_config.telemetry_sample_period = scenario.telemetry_sample_period;
      cfg.fabric.controller_config.flow_monitor_enabled = scenario.telemetry_sample_period > 0;
    }
    // Every fabric switch runs its own MMU instance (the pool is per-switch);
    // the sharded cross-check inherits this via the config copy below.
    if (scenario.has_mmu()) scenario.apply_mmu(cfg.fabric.switch_config.mmu);
    if (scenario.has_link_faults()) {
      // Seeded flap schedules on every inter-switch link, identical across
      // the three mechanism runs. The horizon ends well inside the drain
      // window so recovery is always reachable.
      const sim::SimTime flap_start = sim::SimTime::milliseconds(20);
      const sim::SimTime horizon = sim::SimTime::milliseconds(130);
      for (std::size_t li = 0; li < topology.links().size(); ++li) {
        if (topology.links()[li].host_edge) continue;
        core::LinkFaultSpec spec;
        spec.link_index = li;
        spec.schedule = net::LinkFaultSchedule::flap(
            scenario.fabric_fault_seed * 1000003 + li, flap_start, horizon,
            scenario.fabric_flap_mean_up_s, scenario.fabric_flap_mean_down_s);
        if (spec.schedule.empty()) continue;
        cfg.link_faults.push_back(spec);
      }
    }
    const core::FabricExperimentResult r = run_fabric_experiment(cfg);
    delivered[i] = r.delivered;
    drained[i] = r.drained;
    out.fabric_delivered += r.packets_delivered;

    if (scenario.has_telemetry()) {
      // Fabric ledger totality. Injections are endpoint-driven and exact;
      // fault-free drained runs must close completely (every payload
      // delivered, nothing fated or stranded). Under link faults the
      // mechanisms legitimately lose packets, but every loss still needs a
      // terminal fate or a buffer slot — injected covers them by identity,
      // and the delivered count must still match the sinks exactly (drained
      // fault-free runs have no duplicates, so unique == copies).
      const std::string label =
          "fabric-telemetry " + std::string(sw::buffer_mode_name(kModes[i]));
      if (obsy.injected() != r.packets_sent) {
        out.failures.push_back(label + ": ledger injected " + std::to_string(obsy.injected()) +
                               " != packets sent " + std::to_string(r.packets_sent));
      }
      if (!scenario.has_link_faults() && r.drained) {
        if (obsy.delivered() != r.packets_delivered) {
          out.failures.push_back(label + ": ledger delivered " +
                                 std::to_string(obsy.delivered()) + " != sink deliveries " +
                                 std::to_string(r.packets_delivered));
        }
        if (obsy.fated() != 0 || obsy.stranded() != 0) {
          out.failures.push_back(label + ": drained run left fated=" +
                                 std::to_string(obsy.fated()) + " stranded=" +
                                 std::to_string(obsy.stranded()));
        }
      }
      if (scenario.telemetry_int_depth > 0 && obsy.delivered() > 0 &&
          obsy.stamped_deliveries() != obsy.delivered()) {
        out.failures.push_back(label + ": " + std::to_string(obsy.stamped_deliveries()) +
                               " stamped deliveries but " + std::to_string(obsy.delivered()) +
                               " ledgered (depth >= 1 must stamp every delivery)");
      }
    }

    if (scenario.fabric_shards >= 2) {
      // Re-run this mechanism on the sharded engine: per-switch conservation
      // must hold there too, and — fault-free and drained on both engines —
      // the delivered payload multiset must match the sequential run exactly
      // (shard counts may reorder equal-timestamp events, so the multiset,
      // not the byte stream, is the contract).
      std::vector<std::unique_ptr<InvariantRegistry>> shard_registries;
      core::FabricExperimentConfig shard_cfg = cfg;
      shard_cfg.observers.clear();
      // The observatory is one shared ledger; re-running the same payloads
      // through it would mix two runs' fates. The telemetry *knobs* stay on
      // so the sharded run stamps and samples identically.
      shard_cfg.observatory = nullptr;
      for (unsigned sw_i = 0; sw_i < topology.n_switches(); ++sw_i) {
        shard_registries.push_back(std::make_unique<InvariantRegistry>());
        if (scenario.fabric_full_path) shard_registries.back()->set_allow_proactive_installs(true);
        if (scenario.has_link_faults()) shard_registries.back()->set_allow_revisits(true);
        shard_cfg.observers.push_back(shard_registries.back().get());
      }
      shard_cfg.fabric.shards = scenario.fabric_shards;
      shard_cfg.fabric.shard_threads = 2;
      const core::FabricExperimentResult sr = run_fabric_experiment(shard_cfg);
      const std::string label =
          "fabric-sharded(" + std::to_string(scenario.fabric_shards) + ") " +
          std::string(sw::buffer_mode_name(kModes[i]));
      std::uint64_t shard_events = 0;
      for (unsigned sw_i = 0; sw_i < shard_registries.size(); ++sw_i) {
        shard_registries[sw_i]->finalize(
            /*expect_all_delivered=*/sr.drained && !scenario.has_link_faults());
        shard_events += shard_registries[sw_i]->events_observed();
        if (!shard_registries[sw_i]->ok()) {
          out.failures.push_back(label + " " + topology.name(topology.switch_id(sw_i)) + ": " +
                                 shard_registries[sw_i]->report());
        }
      }
      out.fabric_events += shard_events;
      if (shard_events == 0) {
        out.failures.push_back(label + ": observers saw no events (hooks unwired?)");
      }
      if (sr.packets_sent != r.packets_sent) {
        out.failures.push_back(label + ": emitted " + std::to_string(sr.packets_sent) +
                               " packets vs sequential " + std::to_string(r.packets_sent));
      }
      if (!scenario.has_link_faults()) {
        if (!sr.drained) {
          out.failures.push_back(label + ": undrained (" + std::to_string(sr.packets_delivered) +
                                 "/" + std::to_string(sr.packets_sent) + " delivered)");
        }
        if (sr.drained && r.drained && sr.delivered != r.delivered) {
          out.failures.push_back(label +
                                 " delivered a different payload multiset than the "
                                 "sequential engine");
        }
      }
    }

    std::uint64_t events = 0;
    for (unsigned sw_i = 0; sw_i < registries.size(); ++sw_i) {
      // Under link faults a frame can die on the wire after the switch
      // forwarded it, so per-switch "all delivered" no longer holds even in
      // a drained run — conservation is the contract there.
      registries[sw_i]->finalize(
          /*expect_all_delivered=*/r.drained && !scenario.has_link_faults());
      events += registries[sw_i]->events_observed();
      if (!registries[sw_i]->ok()) {
        out.failures.push_back("fabric " + std::string(sw::buffer_mode_name(kModes[i])) + " " +
                               topology.name(topology.switch_id(sw_i)) + ": " +
                               registries[sw_i]->report());
      }
    }
    out.fabric_events += events;
    if (events == 0) {
      out.failures.push_back("fabric " + std::string(sw::buffer_mode_name(kModes[i])) +
                             ": observers saw no events (hooks unwired?)");
    }
    if (!r.drained && !scenario.has_link_faults()) {
      // Link faults legitimately eat packets (no closed loop here), so the
      // drained requirement only applies to fault-free fabrics.
      out.failures.push_back("fabric " + std::string(sw::buffer_mode_name(kModes[i])) +
                             ": undrained (" + std::to_string(r.packets_delivered) + "/" +
                             std::to_string(r.packets_sent) + " delivered, " +
                             std::to_string(r.duplicates) + " dup)");
    }
  }
  // Fault-free fabrics: every mechanism must deliver the identical payload
  // multiset. Under link faults the mechanisms diverge (a re-raised miss
  // takes a different path than a buffered release), so only per-switch
  // conservation is checked there.
  if (!scenario.has_link_faults()) {
    for (std::size_t i = 1; i < 3; ++i) {
      if (drained[i] && drained[0] && delivered[i] != delivered[0]) {
        out.failures.push_back("fabric " + std::string(sw::buffer_mode_name(kModes[i])) +
                               " delivered a different payload multiset than " +
                               sw::buffer_mode_name(kModes[0]));
      }
    }
  }
}

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " rate=" << rate_mbps << "Mbps frame=" << frame_size << " flows="
     << n_flows << "x" << packets_per_flow << " order="
     << (order == host::EmissionOrder::Sequential ? "seq" : "cross") << " batch=" << batch_size
     << " tcp=" << tcp_flow_fraction << " buf_cap=" << buffer_capacity << " table_cap="
     << flow_table_capacity << " piggyback=" << piggyback_buffer_id << " drop_p="
     << drop_pkt_in_probability << " poll=" << stats_poll_interval.to_string();
  if (has_channel_faults() || echo_interval > sim::SimTime::zero()) {
    os << " chan_loss=" << chan_loss_to_controller << '/' << chan_loss_to_switch
       << " chan_dup=" << chan_duplicate_prob << " chan_jitter=" << chan_extra_delay.to_string()
       << " outage=" << outage_start.to_string() << '+' << outage_len.to_string()
       << " echo=" << echo_interval.to_string() << " fail_mode=" << sw::fail_mode_name(fail_mode);
  }
  if (has_fabric()) {
    constexpr const char* kKinds[] = {"leaf-spine", "fat-tree-k2", "random"};
    os << " fabric=" << kKinds[fabric_kind % 3] << " fabric_sw=" << fabric_switches
       << " fabric_seed=" << fabric_seed << " fabric_pattern=" << fabric_pattern
       << " fabric_install=" << (fabric_full_path ? "full-path" : "per-hop");
    if (has_link_faults()) {
      os << " link_flap=" << fabric_flap_mean_up_s << "s/" << fabric_flap_mean_down_s
         << "s link_fault_seed=" << fabric_fault_seed;
    }
    if (fabric_shards > 0) os << " fabric_shards=" << fabric_shards;
  }
  if (has_telemetry()) {
    os << " telemetry=on int_depth=" << telemetry_int_depth
       << " sample_period=" << telemetry_sample_period;
  }
  if (has_mmu()) {
    os << " mmu=" << sw::mmu::policy_kind_name(static_cast<sw::mmu::PolicyKind>(mmu_policy % 3))
       << " pool_cells=" << mmu_pool_cells << " alpha=" << mmu_alpha;
  }
  return os.str();
}

core::ExperimentConfig Scenario::experiment_config(sw::BufferMode mode) const {
  core::ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.buffer_capacity = buffer_capacity;
  cfg.rate_mbps = rate_mbps;
  cfg.frame_size = frame_size;
  cfg.n_flows = n_flows;
  cfg.packets_per_flow = packets_per_flow;
  cfg.order = order;
  cfg.batch_size = batch_size;
  cfg.tcp_flow_fraction = tcp_flow_fraction;
  cfg.seed = seed;
  cfg.testbed.switch_config.flow_table_capacity = flow_table_capacity;
  cfg.testbed.controller_config.piggyback_buffer_id = piggyback_buffer_id;
  cfg.testbed.controller_config.drop_pkt_in_probability = drop_pkt_in_probability;
  cfg.testbed.controller_config.stats_poll_interval = stats_poll_interval;
  cfg.testbed.fault_profile.loss_to_controller = chan_loss_to_controller;
  cfg.testbed.fault_profile.loss_to_switch = chan_loss_to_switch;
  cfg.testbed.fault_profile.duplicate_to_controller = chan_duplicate_prob;
  cfg.testbed.fault_profile.duplicate_to_switch = chan_duplicate_prob;
  cfg.testbed.fault_profile.max_extra_delay = chan_extra_delay;
  if (outage_len > sim::SimTime::zero()) {
    cfg.testbed.fault_profile.outages.push_back({outage_start, outage_start + outage_len});
  }
  cfg.testbed.switch_config.echo_interval = echo_interval;
  cfg.testbed.switch_config.fail_mode = fail_mode;
  if (telemetry) {
    cfg.testbed.switch_config.telemetry_int_depth = telemetry_int_depth;
    cfg.testbed.switch_config.telemetry_sample_period = telemetry_sample_period;
    cfg.testbed.controller_config.flow_monitor_enabled = telemetry_sample_period > 0;
  }
  if (mmu) apply_mmu(cfg.testbed.switch_config.mmu);
  return cfg;
}

void Scenario::apply_mmu(sw::mmu::MmuConfig& m) const {
  m.enabled = true;
  m.policy = static_cast<sw::mmu::PolicyKind>(mmu_policy % 3);
  m.pool_cells = mmu_pool_cells;
  // Modest headroom and reserved minima keep the shared region dominant
  // while still exercising the reserved/shared accounting transitions.
  m.headroom_cells = mmu_pool_cells / 32;
  m.reserved_cells = 4;
  m.alpha = mmu_alpha;
  m.buffer_alpha = mmu_alpha;
}

ScenarioOutcome run_scenario(const Scenario& scenario) {
  ScenarioOutcome out;
  out.scenario = scenario;
  constexpr sw::BufferMode kModes[] = {sw::BufferMode::NoBuffer,
                                       sw::BufferMode::PacketGranularity,
                                       sw::BufferMode::FlowGranularity};
  for (std::size_t i = 0; i < 3; ++i) {
    InvariantRegistry registry;
    core::ExperimentConfig cfg = scenario.experiment_config(kModes[i]);
    cfg.observer = &registry;
    obs::FabricObservatory obsy;
    if (scenario.has_telemetry()) cfg.observatory = &obsy;

    ModeOutcome& mo = out.modes[i];
    mo.mode = kModes[i];
    mo.result = core::run_experiment(cfg);
    // A drained run must have delivered every payload exactly once; an
    // undrained one (overload, fault injection) only has to account for
    // every payload. With channel faults a duplicated delivery can mask a
    // lost one in the sink's raw count, so "drained" no longer implies
    // per-payload delivery — conservation is the contract there.
    registry.finalize(
        /*expect_all_delivered=*/mo.result.drained && !scenario.has_channel_faults());
    mo.violations = registry.total_violations();
    mo.events = registry.events_observed();
    mo.report = registry.report();
    mo.delivered = registry.delivered_payloads();

    if (mo.events == 0) {
      out.failures.push_back(std::string(sw::buffer_mode_name(mo.mode)) +
                             ": observer saw no events (hooks unwired?)");
    }
    if (!registry.ok()) {
      out.failures.push_back(std::string(sw::buffer_mode_name(mo.mode)) + ": " + mo.report);
    }

    if (scenario.has_telemetry()) {
      // Ledger totality, cross-checked against the registry's independent
      // per-payload accounting. Endpoint injections are fault-immune, so the
      // injected count is exact regardless of channel faults. Fault-free,
      // the fate and stranded totals must match the registry's drop/expire/
      // loss and still-buffered counts exactly; under channel faults a
      // retransmitted copy can retract an earlier fate (delivery wins), so
      // the fate total may only shrink below the registry's sum.
      const std::string label = std::string("telemetry ") + sw::buffer_mode_name(mo.mode);
      const InvariantRegistry::AccountTotals at = registry.account_totals();
      const std::uint64_t accounted = at.dropped + at.expired + at.lost;
      if (obsy.injected() != mo.result.packets_sent) {
        out.failures.push_back(label + ": ledger injected " + std::to_string(obsy.injected()) +
                               " != packets sent " + std::to_string(mo.result.packets_sent));
      }
      if (!scenario.has_channel_faults()) {
        if (obsy.fated() != accounted) {
          out.failures.push_back(label + ": ledger fated " + std::to_string(obsy.fated()) +
                                 " != registry dropped+expired+lost " +
                                 std::to_string(accounted));
        }
        if (obsy.stranded() != at.buffered) {
          out.failures.push_back(label + ": ledger stranded " + std::to_string(obsy.stranded()) +
                                 " != registry still-buffered " + std::to_string(at.buffered));
        }
      } else if (obsy.fated() > accounted) {
        out.failures.push_back(label + ": ledger fated " + std::to_string(obsy.fated()) +
                               " exceeds registry dropped+expired+lost " +
                               std::to_string(accounted));
      }
    }
  }

  // Cross-mechanism equivalence: when every mechanism drained, all three
  // must have delivered the same payload multiset — buffering strategy must
  // not change *what* arrives, only when. Under channel faults the
  // mechanisms legitimately diverge (different messages get lost), so only
  // per-mode conservation is required there.
  const bool all_drained = out.modes[0].result.drained && out.modes[1].result.drained &&
                           out.modes[2].result.drained;
  if (all_drained && !scenario.has_channel_faults()) {
    for (std::size_t i = 1; i < 3; ++i) {
      if (out.modes[i].delivered != out.modes[0].delivered) {
        out.failures.push_back(std::string(sw::buffer_mode_name(out.modes[i].mode)) +
                               " delivered a different payload multiset than " +
                               sw::buffer_mode_name(out.modes[0].mode) + " (" +
                               std::to_string(out.modes[i].delivered.size()) + " vs " +
                               std::to_string(out.modes[0].delivered.size()) + " deliveries)");
      }
    }
  }

  if (scenario.has_fabric()) run_fabric_check(scenario, out);
  return out;
}

}  // namespace sdnbuf::verify

// Invariant observation points.
//
// `InvariantObserver` is the hook interface the datapath components call at
// every semantically meaningful transition: packet injection/delivery/drop,
// buffer unit lifecycle (store / release / expire / retire), packet_in
// emission, controller-side fault drops, and every control-channel send.
// Components hold a nullable observer pointer and pay nothing when it is
// unset, so production runs are unaffected; the concrete implementation
// (`verify::InvariantRegistry`) turns the event stream into mechanical
// invariant checks.
//
// The interface lives below switchd/controller/core in the dependency order
// (it only speaks net/openflow/sim vocabulary), which is what lets every
// layer report into one registry.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "openflow/messages.hpp"
#include "sim/time.hpp"

namespace sdnbuf::verify {

class InvariantObserver {
 public:
  virtual ~InvariantObserver() = default;

  // --- payload path (testbed injection points and host sinks) ---
  virtual void on_packet_injected(const net::Packet& packet, sim::SimTime now) = 0;
  virtual void on_packet_delivered(const net::Packet& packet, sim::SimTime now) = 0;
  // `where` names the drop site ("no-actions", "unknown-port", "egress-queue", ...).
  virtual void on_packet_dropped(const net::Packet& packet, const char* where,
                                 sim::SimTime now) = 0;

  // --- buffer unit lifecycle (PacketBufferManager / FlowBufferManager) ---
  // `new_unit` is true when the store allocated a fresh buffer_id slot;
  // `flow_granularity` distinguishes shared per-flow slots from per-packet
  // slots (they obey different stability rules).
  virtual void on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet, bool new_unit,
                               bool flow_granularity, sim::SimTime now) = 0;
  virtual void on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                                 sim::SimTime now) = 0;
  virtual void on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                                sim::SimTime now) = 0;
  // The buffer_id slot stops being live (after a release_all / release /
  // expiry); reclaim-delay accounting is not the observer's concern.
  virtual void on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) = 0;

  // --- control path ---
  // The switch emitted a packet_in for `packet` (metadata intact) under
  // `xid`; buffer_id is kNoBuffer for full-frame punts.
  virtual void on_packet_in_sent(std::uint32_t xid, const net::Packet& packet,
                                 std::uint32_t buffer_id, sim::SimTime now) = 0;
  // Controller-side fault injection silently discarded the packet_in.
  virtual void on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id,
                                 sim::SimTime now) = 0;
  // Every message crossing the channel, at send time (wired via the
  // channel's verify tap).
  virtual void on_control_message(bool to_controller, const of::OfMessage& msg,
                                  sim::SimTime now) = 0;
  // A channel fault hit `msg`: lost in transit, never sent (outage), or
  // delivered twice (duplicate). Fires via the channel's fault tap; for
  // duplicates it fires before the duplicate's on_control_message. Default
  // no-op so observers that predate the fault plane keep compiling.
  virtual void on_channel_fault(bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                                sim::SimTime now) {
    (void)to_controller;
    (void)msg;
    (void)kind;
    (void)now;
  }

  // --- shared-memory MMU (DESIGN.md §16) ---
  // The MMU admitted / released a charge against queue `queue` (a per-switch
  // handle): `native` legacy units and `cells` pool cells, with the queue's
  // and pool's post-transition cell occupancies. A release may carry only
  // one currency (cells when the packet leaves, the native unit at deferred
  // reclaim). Default no-op so observers that predate the MMU keep
  // compiling.
  virtual void on_mmu_admit(std::uint32_t queue, std::uint64_t native, std::uint64_t cells,
                            std::uint64_t queue_cells_after, std::uint64_t pool_cells_after,
                            sim::SimTime now) {
    (void)queue;
    (void)native;
    (void)cells;
    (void)queue_cells_after;
    (void)pool_cells_after;
    (void)now;
  }
  virtual void on_mmu_release(std::uint32_t queue, std::uint64_t native, std::uint64_t cells,
                              std::uint64_t queue_cells_after, std::uint64_t pool_cells_after,
                              sim::SimTime now) {
    (void)queue;
    (void)native;
    (void)cells;
    (void)queue_cells_after;
    (void)pool_cells_after;
    (void)now;
  }
};

}  // namespace sdnbuf::verify

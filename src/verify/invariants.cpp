#include "verify/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "metrics/delay_recorder.hpp"
#include "openflow/channel.hpp"

namespace sdnbuf::verify {

namespace {

// Keep reports bounded even when a broken build violates an invariant per
// packet; the count in report() stays exact.
constexpr std::size_t kMaxRecordedViolations = 256;

std::string payload_str(std::uint64_t flow_id, std::uint32_t seq) {
  return "flow=" + std::to_string(flow_id) + " seq=" + std::to_string(seq);
}

std::string payload_str(const net::Packet& p) { return payload_str(p.flow_id, p.seq_in_flow); }

// Reconstructs the exact 5-tuple a fully-specified match selects; nullopt
// when any of the five fields is wildcarded (aggregated rules).
std::optional<net::FlowKey> exact_key_of(const of::Match& m) {
  if ((m.wildcards & (of::kWildcardNwProto | of::kWildcardTpSrc | of::kWildcardTpDst)) != 0)
    return std::nullopt;
  if (m.nw_src_ignored_bits() != 0 || m.nw_dst_ignored_bits() != 0) return std::nullopt;
  net::FlowKey key;
  key.src_ip = m.nw_src;
  key.dst_ip = m.nw_dst;
  key.src_port = m.tp_src;
  key.dst_port = m.tp_dst;
  key.protocol = m.nw_proto;
  return key;
}

}  // namespace

std::string Violation::to_string() const {
  return "[" + when.to_string() + "] " + invariant + ": " + detail;
}

void InvariantRegistry::attach(of::Channel& channel) {
  channel.set_verify_tap([this](bool to_controller, const of::OfMessage& msg, std::size_t,
                                sim::SimTime when) { on_control_message(to_controller, msg, when); });
  channel.set_fault_tap([this](bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                               sim::SimTime when) { on_channel_fault(to_controller, msg, kind, when); });
}

void InvariantRegistry::violate(sim::SimTime when, std::string invariant, std::string detail) {
  ++total_violations_;
  if (violations_.size() < kMaxRecordedViolations) {
    violations_.push_back(Violation{when, std::move(invariant), std::move(detail)});
  }
}

bool InvariantRegistry::tracked(const net::Packet& packet) {
  return packet.flow_id != metrics::kUntrackedFlow;
}

InvariantRegistry::PacketAccount* InvariantRegistry::account_for(const net::Packet& packet) {
  if (!tracked(packet)) return nullptr;
  return &accounts_[PayloadId{packet.flow_id, packet.seq_in_flow}];
}

void InvariantRegistry::on_packet_injected(const net::Packet& packet, sim::SimTime now) {
  ++events_;
  auto* account = account_for(packet);
  if (account == nullptr) return;
  if (++account->injected > 1) {
    // A revisit is only legal (and only when opted in) if every prior visit
    // through this switch was closed out before the packet came back.
    const bool closed_revisit =
        allow_revisits_ && account->injected <= account->delivered + account->dropped + 1;
    if (!closed_revisit) {
      violate(now, "double-injection", payload_str(packet) + " injected again");
    }
  }
}

void InvariantRegistry::on_packet_delivered(const net::Packet& packet, sim::SimTime now) {
  ++events_;
  auto* account = account_for(packet);
  if (account == nullptr) return;
  if (account->injected == 0) {
    violate(now, "spurious-delivery", payload_str(packet) + " delivered but never injected");
  }
  // With revisits allowed, each injection earns one delivery; otherwise the
  // packet may leave the switch exactly once (plus any channel-dup slack).
  const std::uint32_t visit_cap = allow_revisits_ ? account->injected : 1;
  if (++account->delivered > visit_cap + account->dup_allowance) {
    violate(now, "duplicate-delivery",
            payload_str(packet) + " delivered " + std::to_string(account->delivered) +
                " times (dup allowance " + std::to_string(account->dup_allowance) + ")");
  }
}

void InvariantRegistry::on_packet_dropped(const net::Packet& packet, const char* where,
                                          sim::SimTime now) {
  ++events_;
  (void)where;
  (void)now;
  if (auto* account = account_for(packet); account != nullptr) ++account->dropped;
}

void InvariantRegistry::on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet,
                                        bool new_unit, bool flow_granularity, sim::SimTime now) {
  ++events_;
  if (buffer_id == of::kNoBuffer) {
    violate(now, "buffer-id-invalid", "store under OFP_NO_BUFFER");
    return;
  }
  auto it = live_units_.find(buffer_id);
  if (new_unit) {
    if (it != live_units_.end()) {
      violate(now, "buffer-id-reuse",
              "id " + std::to_string(buffer_id) + " allocated while still live");
    } else {
      LiveUnit unit;
      unit.flow_granularity = flow_granularity;
      unit.key = packet.flow_key();
      if (flow_granularity) {
        if (const auto prev = flow_to_unit_.find(unit.key); prev != flow_to_unit_.end()) {
          violate(now, "flow-key-two-units",
                  unit.key.to_string() + " maps to ids " + std::to_string(prev->second) + " and " +
                      std::to_string(buffer_id));
        }
        flow_to_unit_[unit.key] = buffer_id;
      }
      it = live_units_.emplace(buffer_id, std::move(unit)).first;
    }
  } else if (it == live_units_.end()) {
    violate(now, "buffer-store-dead-unit",
            "append to unknown id " + std::to_string(buffer_id) + " (" + payload_str(packet) + ")");
  } else if (it->second.flow_granularity && !(it->second.key == packet.flow_key())) {
    // Flow-granularity ids must stay bound to one 5-tuple for their lifetime.
    violate(now, "flow-buffer-id-unstable",
            "id " + std::to_string(buffer_id) + " held " + it->second.key.to_string() +
                " but stored " + packet.flow_key().to_string());
  }
  if (it != live_units_.end()) {
    ++it->second.contents[PayloadId{packet.flow_id, packet.seq_in_flow}];
  }
  if (auto* account = account_for(packet); account != nullptr) ++account->buffered;
}

void InvariantRegistry::on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                                          sim::SimTime now) {
  ++events_;
  const auto it = live_units_.find(buffer_id);
  if (it == live_units_.end()) {
    violate(now, "buffer-double-release",
            "release from dead/unknown id " + std::to_string(buffer_id) + " (" +
                payload_str(packet) + ")");
    return;
  }
  const PayloadId id{packet.flow_id, packet.seq_in_flow};
  const auto stored = it->second.contents.find(id);
  if (stored == it->second.contents.end() || stored->second == 0) {
    violate(now, "buffer-packet-double-release",
            payload_str(packet) + " released more often than stored in id " +
                std::to_string(buffer_id));
  } else if (--stored->second == 0) {
    it->second.contents.erase(stored);
  }
  if (auto* account = account_for(packet); account != nullptr) {
    if (account->buffered == 0) {
      violate(now, "buffer-accounting-underflow", payload_str(packet));
    } else {
      --account->buffered;
    }
  }
}

void InvariantRegistry::on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                                         sim::SimTime now) {
  ++events_;
  const auto it = live_units_.find(buffer_id);
  if (it == live_units_.end()) {
    violate(now, "buffer-expire-dead-unit",
            "expire from unknown id " + std::to_string(buffer_id));
  } else {
    const PayloadId id{packet.flow_id, packet.seq_in_flow};
    const auto stored = it->second.contents.find(id);
    if (stored == it->second.contents.end() || stored->second == 0) {
      violate(now, "buffer-packet-double-release",
              payload_str(packet) + " expired but not stored in id " + std::to_string(buffer_id));
    } else if (--stored->second == 0) {
      it->second.contents.erase(stored);
    }
  }
  if (auto* account = account_for(packet); account != nullptr) {
    ++account->expired;
    if (account->buffered == 0) {
      violate(now, "buffer-accounting-underflow", payload_str(packet));
    } else {
      --account->buffered;
    }
  }
}

void InvariantRegistry::on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) {
  ++events_;
  const auto it = live_units_.find(buffer_id);
  if (it == live_units_.end()) {
    violate(now, "buffer-unit-double-retire", "id " + std::to_string(buffer_id));
    return;
  }
  if (!it->second.contents.empty()) {
    // A retired slot must not strand payloads — that would be a silent leak.
    std::size_t leaked = 0;
    for (const auto& [id, count] : it->second.contents) leaked += count;
    violate(now, "buffer-unit-leak",
            "id " + std::to_string(buffer_id) + " retired holding " + std::to_string(leaked) +
                " packet(s)");
  }
  if (it->second.flow_granularity) flow_to_unit_.erase(it->second.key);
  live_units_.erase(it);
}

void InvariantRegistry::on_packet_in_sent(std::uint32_t xid, const net::Packet& packet,
                                          std::uint32_t buffer_id, sim::SimTime now) {
  ++events_;
  auto& record = packet_ins_[xid];
  if (record.has_meta) {
    violate(now, "packet-in-xid-reuse", "xid " + std::to_string(xid) + " used twice");
    return;
  }
  record.buffer_id = buffer_id;
  record.flow_id = packet.flow_id;
  record.seq_in_flow = packet.seq_in_flow;
  record.has_meta = true;
}

void InvariantRegistry::on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id,
                                          sim::SimTime now) {
  ++events_;
  (void)now;
  if (buffer_id != of::kNoBuffer) return;  // packet still buffered at the switch
  const auto it = packet_ins_.find(xid);
  if (it == packet_ins_.end() || !it->second.has_meta) return;  // switch hook not wired
  if (it->second.flow_id == metrics::kUntrackedFlow) return;
  // A dropped full-frame packet_in takes its payload with it.
  ++accounts_[PayloadId{it->second.flow_id, it->second.seq_in_flow}].lost;
}

void InvariantRegistry::on_control_message(bool to_controller, const of::OfMessage& msg,
                                           sim::SimTime now) {
  ++events_;
  const int dir = to_controller ? 1 : 0;
  if (have_send_[dir] && now < last_send_[dir]) {
    violate(now, "capture-time-regression",
            std::string(to_controller ? "to-controller" : "to-switch") + " send at " +
                now.to_string() + " after " + last_send_[dir].to_string());
  }
  last_send_[dir] = now;
  have_send_[dir] = true;

  if (to_controller) {
    if (const auto* pi = std::get_if<of::PacketIn>(&msg)) {
      auto& record = packet_ins_[pi->xid];
      if (record.seen_on_wire) {
        if (record.allowed_wire_crossings > 0) {
          --record.allowed_wire_crossings;  // channel duplication, announced
        } else {
          violate(now, "packet-in-xid-reuse",
                  "xid " + std::to_string(pi->xid) + " crossed the channel twice");
        }
      }
      record.seen_on_wire = true;
      if (!record.has_meta) record.buffer_id = pi->buffer_id;
      // Whatever the controller can parse out of the data field is what it
      // provably "saw" — the basis of the table-consistency check.
      if (auto parsed = net::Packet::parse(pi->data, pi->total_len); parsed.has_value()) {
        controller_saw_[parsed->flow_key()] = {*parsed, pi->in_port};
      }
    }
    return;
  }

  const std::uint32_t xid = of::message_xid(msg);
  if (const auto* fm = std::get_if<of::FlowMod>(&msg)) {
    if (allow_proactive_installs_) return;
    // Deletes answer no packet_in by design: route repair invalidates rules
    // over dead links with fresh xids, outside any request/response pair.
    const bool is_delete = fm->command == of::FlowModCommand::Delete ||
                           fm->command == of::FlowModCommand::DeleteStrict;
    if (!is_delete && packet_ins_.count(xid) == 0) {
      violate(now, "unpaired-flow-mod", "xid " + std::to_string(xid) + " answers no packet_in");
    }
    if (fm->command == of::FlowModCommand::Add) {
      bool covered = false;
      if (const auto key = exact_key_of(fm->match); key.has_value()) {
        covered = controller_saw_.count(*key) != 0;
      }
      if (!covered) {
        // Wildcarded (aggregated) rule, or the exact lookup missed: fall back
        // to scanning everything the controller has seen.
        covered = std::any_of(controller_saw_.begin(), controller_saw_.end(),
                              [&fm](const auto& entry) {
                                return fm->match.matches(entry.second.first, entry.second.second);
                              });
      }
      if (!covered) {
        violate(now, "rule-without-packet",
                "flow_mod installs " + fm->match.to_string() +
                    " matching nothing the controller saw");
      }
    }
  } else if (std::holds_alternative<of::PacketOut>(msg)) {
    if (packet_ins_.count(xid) == 0) {
      violate(now, "unpaired-packet-out", "xid " + std::to_string(xid) + " answers no packet_in");
    }
  }
}

void InvariantRegistry::on_channel_fault(bool to_controller, const of::OfMessage& msg,
                                         of::FaultKind kind, sim::SimTime now) {
  ++events_;
  (void)now;
  // A duplicated packet_in legitimately crosses the wire once more; widen
  // the xid-reuse budget before the second crossing is observed.
  if (to_controller && kind == of::FaultKind::Duplicate) {
    if (const auto* pi = std::get_if<of::PacketIn>(&msg)) {
      ++packet_ins_[pi->xid].allowed_wire_crossings;
    }
  }
  // Attribute the downstream payload effect. Only frame-carrying messages
  // take a payload with them: a full-frame packet_in upstream, a
  // data-carrying packet_out downstream. Header-only messages (buffered
  // packet_ins, flow_mods, echoes, hellos) leave the payload at the switch,
  // where the resend/expiry machinery stays accountable for it.
  std::uint32_t xid = 0;
  bool carries_frame = false;
  if (to_controller) {
    if (const auto* pi = std::get_if<of::PacketIn>(&msg)) {
      xid = pi->xid;
      carries_frame = pi->buffer_id == of::kNoBuffer;
    }
  } else if (const auto* po = std::get_if<of::PacketOut>(&msg)) {
    xid = po->xid;
    carries_frame = po->buffer_id == of::kNoBuffer && !po->data.empty();
  }
  if (!carries_frame) return;
  const auto it = packet_ins_.find(xid);
  if (it == packet_ins_.end() || !it->second.has_meta) return;  // switch hook not wired
  if (it->second.flow_id == metrics::kUntrackedFlow) return;
  auto& account = accounts_[PayloadId{it->second.flow_id, it->second.seq_in_flow}];
  if (kind == of::FaultKind::Duplicate) {
    ++account.dup_allowance;
  } else {
    // Loss or outage took this copy of the frame with it.
    ++account.lost;
  }
}

void InvariantRegistry::check_mmu_event(std::uint32_t queue, std::uint64_t queue_cells_after,
                                        std::uint64_t pool_cells_after, sim::SimTime now) {
  const MmuQueueLedger& ledger = mmu_queues_[queue];
  if (queue_cells_after != ledger.cells) {
    violate(now, "mmu-queue-mismatch",
            "queue " + std::to_string(queue) + " reports " + std::to_string(queue_cells_after) +
                " cells, ledger has " + std::to_string(ledger.cells));
  }
  if (pool_cells_after != mmu_pool_cells_) {
    violate(now, "mmu-pool-mismatch",
            "pool reports " + std::to_string(pool_cells_after) + " cells, ledger sum is " +
                std::to_string(mmu_pool_cells_));
  }
}

void InvariantRegistry::on_mmu_admit(std::uint32_t queue, std::uint64_t native,
                                     std::uint64_t cells, std::uint64_t queue_cells_after,
                                     std::uint64_t pool_cells_after, sim::SimTime now) {
  ++events_;
  MmuQueueLedger& ledger = mmu_queues_[queue];
  ledger.native += native;
  ledger.cells += cells;
  mmu_pool_cells_ += cells;
  check_mmu_event(queue, queue_cells_after, pool_cells_after, now);
}

void InvariantRegistry::on_mmu_release(std::uint32_t queue, std::uint64_t native,
                                       std::uint64_t cells, std::uint64_t queue_cells_after,
                                       std::uint64_t pool_cells_after, sim::SimTime now) {
  ++events_;
  MmuQueueLedger& ledger = mmu_queues_[queue];
  if (native > ledger.native) {
    violate(now, "mmu-release-underflow",
            "queue " + std::to_string(queue) + " releases " + std::to_string(native) +
                " native units, ledger has " + std::to_string(ledger.native));
    ledger.native = 0;
  } else {
    ledger.native -= native;
  }
  if (cells > ledger.cells) {
    violate(now, "mmu-release-underflow",
            "queue " + std::to_string(queue) + " releases " + std::to_string(cells) +
                " cells, ledger has " + std::to_string(ledger.cells));
    mmu_pool_cells_ -= std::min(mmu_pool_cells_, ledger.cells);
    ledger.cells = 0;
  } else {
    ledger.cells -= cells;
    mmu_pool_cells_ -= std::min(mmu_pool_cells_, cells);
  }
  check_mmu_event(queue, queue_cells_after, pool_cells_after, now);
}

void InvariantRegistry::finalize(bool expect_all_delivered) {
  finalized_ = true;
  const sim::SimTime when = std::max(last_send_[0], last_send_[1]);
  for (const auto& [id, account] : accounts_) {
    const std::uint64_t accounted = static_cast<std::uint64_t>(account.delivered) +
                                    account.dropped + account.expired + account.lost +
                                    account.buffered;
    // Channel duplication can make one payload arrive (or be attributed)
    // more than once, so conservation is a window: every injection must be
    // accounted, and nothing beyond the duplication allowance may be.
    if (accounted < account.injected || accounted > account.injected + account.dup_allowance) {
      std::ostringstream os;
      os << payload_str(id.first, id.second) << " injected=" << account.injected
         << " delivered=" << account.delivered << " dropped=" << account.dropped
         << " expired=" << account.expired << " lost=" << account.lost
         << " buffered=" << account.buffered << " dup_allowance=" << account.dup_allowance;
      violate(when, "conservation", os.str());
    } else if (expect_all_delivered && account.delivered < account.injected) {
      violate(when, "undelivered",
              payload_str(id.first, id.second) + " accounted but never delivered");
    }
  }
}

std::vector<PayloadId> InvariantRegistry::delivered_payloads() const {
  std::vector<PayloadId> out;
  for (const auto& [id, account] : accounts_) {
    for (std::uint32_t i = 0; i < account.delivered; ++i) out.push_back(id);
  }
  return out;  // accounts_ is ordered, so this is already sorted
}

InvariantRegistry::AccountTotals InvariantRegistry::account_totals() const {
  AccountTotals t;
  for (const auto& [id, account] : accounts_) {
    t.injected += account.injected;
    t.delivered += account.delivered;
    t.dropped += account.dropped;
    t.expired += account.expired;
    t.lost += account.lost;
    t.buffered += account.buffered;
    t.dup_allowance += account.dup_allowance;
  }
  return t;
}

std::string InvariantRegistry::report(std::size_t max_lines) const {
  if (total_violations_ == 0) {
    return "ok (" + std::to_string(events_) + " events observed" +
           (finalized_ ? "" : ", not finalized") + ")";
  }
  std::ostringstream os;
  os << total_violations_ << " invariant violation(s):\n";
  for (std::size_t i = 0; i < violations_.size() && i < max_lines; ++i) {
    os << "  " << violations_[i].to_string() << '\n';
  }
  if (total_violations_ > max_lines) {
    os << "  ... " << (total_violations_ - max_lines) << " more\n";
  }
  return os.str();
}

}  // namespace sdnbuf::verify

// Seeded scenario sampling for the invariant fuzzer.
//
// A `Scenario` is one randomized point in the experiment space (workload
// shape, buffer capacity, fault injection, polling). `sample_scenario` maps
// a 64-bit seed to a scenario deterministically, so a failure report's seed
// is enough to reproduce the exact run. `run_scenario` executes the
// scenario under all three buffer mechanisms with an `InvariantRegistry`
// attached, finalizes the accounting, and cross-checks that the mechanisms
// delivered identical payload multisets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "verify/invariants.hpp"

namespace sdnbuf::verify {

struct Scenario {
  std::uint64_t seed = 1;
  double rate_mbps = 10.0;
  std::uint32_t frame_size = 1000;
  std::uint64_t n_flows = 100;
  std::uint32_t packets_per_flow = 1;
  host::EmissionOrder order = host::EmissionOrder::Sequential;
  std::uint32_t batch_size = 5;
  double tcp_flow_fraction = 0.0;
  std::size_t buffer_capacity = 256;
  std::size_t flow_table_capacity = 4096;
  bool piggyback_buffer_id = false;
  double drop_pkt_in_probability = 0.0;
  sim::SimTime stats_poll_interval = sim::SimTime::zero();

  // Control-channel fault plane (armed after warm-up; see
  // TestbedConfig::fault_profile). Loss/duplication are symmetric per
  // direction here to keep the sampled space small.
  double chan_loss_to_controller = 0.0;
  double chan_loss_to_switch = 0.0;
  double chan_duplicate_prob = 0.0;
  sim::SimTime chan_extra_delay = sim::SimTime::zero();
  // A single outage window relative to measurement start; zero length = none.
  sim::SimTime outage_start = sim::SimTime::zero();
  sim::SimTime outage_len = sim::SimTime::zero();
  // Liveness + degradation mode (echo disabled unless an outage or faults
  // make it interesting).
  sim::SimTime echo_interval = sim::SimTime::zero();
  sw::ConnectionFailMode fail_mode = sw::ConnectionFailMode::FailSecure;

  // Fabric cross-check: a small multi-switch fabric (2-8 switches) run under
  // topology routing in addition to the single-chain scenario above.
  // `fabric_switches == 0` disables it.
  unsigned fabric_kind = 0;      // 0=leaf-spine, 1=fat-tree k=2, 2=random edge list
  unsigned fabric_switches = 0;  // switch budget for the random kind; 0 = off
  std::uint64_t fabric_seed = 0;
  unsigned fabric_pattern = 0;  // host::TrafficPattern index
  bool fabric_full_path = false;

  // Data-plane link faults on the fabric cross-check: seeded flap schedules
  // on every inter-switch link (DESIGN.md §13). Zero mean-up disables them.
  double fabric_flap_mean_up_s = 0.0;
  double fabric_flap_mean_down_s = 0.0;
  std::uint64_t fabric_fault_seed = 0;

  // Sharded-engine cross-check (DESIGN.md §14): re-run each fabric mechanism
  // on the sharded engine with this many shards and compare against the
  // sequential run — same per-switch conservation, and (fault-free, drained)
  // the identical delivered payload multiset. 0 disables it.
  unsigned fabric_shards = 0;

  // Telemetry-plane cross-check (DESIGN.md §15): attach a FabricObservatory
  // to every mechanism run and require the drop-attribution ledger to close
  // against the invariant registry's independent accounting. INT depth and
  // the sampling period exercise the stamping / NetFlow paths; both zero
  // leaves just the passive ledger. `telemetry == false` disables the whole
  // dimension.
  bool telemetry = false;
  unsigned telemetry_int_depth = 0;
  std::uint32_t telemetry_sample_period = 0;

  // Shared-memory MMU cross-check (DESIGN.md §16): run every mechanism (and
  // the fabric / sharded cross-checks) with the switch's buffer managers and
  // egress queues arbitrated by one shared cell pool under the drawn sharing
  // policy. The pool-conservation invariant (ledger vs reported occupancies)
  // rides on the same InvariantRegistry hooks. `mmu == false` disables the
  // dimension entirely (byte-identical to the pre-MMU fuzzer).
  bool mmu = false;
  unsigned mmu_policy = 0;  // sw::mmu::PolicyKind index
  std::uint64_t mmu_pool_cells = 0;
  double mmu_alpha = 1.0;

  [[nodiscard]] bool has_fabric() const { return fabric_switches > 0; }

  [[nodiscard]] bool has_mmu() const { return mmu; }

  [[nodiscard]] bool has_telemetry() const { return telemetry; }

  [[nodiscard]] bool has_link_faults() const { return fabric_flap_mean_up_s > 0.0; }

  [[nodiscard]] bool has_channel_faults() const {
    return chan_loss_to_controller > 0.0 || chan_loss_to_switch > 0.0 ||
           chan_duplicate_prob > 0.0 || chan_extra_delay > sim::SimTime::zero() ||
           outage_len > sim::SimTime::zero();
  }

  // One-line parameter dump for failure reports.
  [[nodiscard]] std::string describe() const;

  // The run_experiment configuration for one buffer mechanism (observer not
  // yet wired; run_scenario does that).
  [[nodiscard]] core::ExperimentConfig experiment_config(sw::BufferMode mode) const;

  // Fills `m` from the scenario's MMU draws (no-op fields untouched when the
  // dimension is off; callers gate on has_mmu()).
  void apply_mmu(sw::mmu::MmuConfig& m) const;
};

// Deterministic seed -> scenario mapping covering the paper's operating
// envelope plus stress corners: undersized buffers, tiny flow tables
// (eviction), controller fault injection (Algorithm 1 re-request), stats
// polling, the piggyback ablation and control-channel faults
// (loss/duplication/jitter/outage). `force_faults` guarantees the sampled
// scenario exercises the channel fault plane (used by the CI smoke step);
// `force_fabric` likewise guarantees the fabric cross-check fires (the two
// forces are mutually exclusive — faults win, and the fault smoke skips
// fabrics to keep its run time). `force_link_faults` implies a fabric and
// guarantees data-plane flap schedules on its inter-switch links.
// `force_shards` implies a fabric and guarantees the sharded-engine
// cross-check fires; its draws are appended last so forcing it never
// perturbs the scenario a seed already maps to. `force_telemetry` likewise
// guarantees the observatory ledger cross-check attaches (its draws are
// appended after everything else, same append-only discipline).
// `force_mmu` guarantees the shared-memory MMU arbitrates every run (its
// draws are appended after the telemetry draws, same discipline).
[[nodiscard]] Scenario sample_scenario(std::uint64_t seed, bool force_faults = false,
                                       bool force_fabric = false,
                                       bool force_link_faults = false,
                                       bool force_shards = false,
                                       bool force_telemetry = false,
                                       bool force_mmu = false);

struct ModeOutcome {
  sw::BufferMode mode = sw::BufferMode::NoBuffer;
  core::ExperimentResult result;
  std::uint64_t violations = 0;
  std::uint64_t events = 0;
  std::string report;                // registry digest (violations or "ok")
  std::vector<PayloadId> delivered;  // sorted payload multiset
};

struct ScenarioOutcome {
  Scenario scenario;
  std::array<ModeOutcome, 3> modes;  // NoBuffer, PacketGranularity, FlowGranularity
  std::vector<std::string> failures;  // empty = scenario passed

  // Fabric cross-check accounting (zero when the scenario has no fabric).
  std::uint64_t fabric_events = 0;
  std::uint64_t fabric_delivered = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

[[nodiscard]] ScenarioOutcome run_scenario(const Scenario& scenario);

}  // namespace sdnbuf::verify

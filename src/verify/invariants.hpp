// Continuous system-wide invariant checking.
//
// `InvariantRegistry` consumes the `InvariantObserver` event stream of a
// running testbed and mechanically asserts the properties the reproduction's
// headline claims rest on:
//
//   conservation      every injected payload is delivered exactly once, or
//                     explicitly accounted (dropped at the switch, expired
//                     from a buffer, lost to controller fault injection or a
//                     channel fault, or still buffered when the run ends);
//                     channel duplication of frame-carrying messages widens
//                     the budget by an explicit per-payload allowance, so
//                     conservation stays closed under injected faults
//   buffer lifecycle  buffer_ids are never reused while live, never released
//                     twice, never leak packets, and a flow-granularity id
//                     stays stable for its 5-tuple while the unit is live
//   table consistency no flow_mod installs a rule for a packet the
//                     controller never saw in a packet_in
//   capture order     control-channel send timestamps are monotonic per
//                     direction
//   xid pairing       every flow_mod/packet_out answers a packet_in the
//                     switch actually sent, and packet_in xids are unique
//
// Violations are recorded (never thrown) so a fuzzer can harvest them per
// run and report the offending seed/config; `finalize` runs the end-of-run
// accounting pass.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/flow_key.hpp"
#include "verify/observer.hpp"

namespace sdnbuf::of {
class Channel;
}

namespace sdnbuf::verify {

struct Violation {
  sim::SimTime when;
  std::string invariant;  // short machine-greppable name
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

// (flow_id, seq_in_flow): the identity of one injected payload.
using PayloadId = std::pair<std::uint64_t, std::uint32_t>;

class InvariantRegistry final : public InvariantObserver {
 public:
  InvariantRegistry() = default;

  // Installs this registry as `channel`'s verify tap (the ChannelCapture tap
  // slot stays free for tcpdump-style captures).
  void attach(of::Channel& channel);

  // Full-path route installation legitimately sends flow_mods that answer no
  // packet_in on this switch's channel (fresh xids, rules for flows this
  // switch never reported). Setting this relaxes the "unpaired-flow-mod" and
  // "rule-without-packet" checks; everything else still applies.
  void set_allow_proactive_installs(bool allow) { allow_proactive_installs_ = allow; }

  // Under data-plane faults, route repair can legitimately steer a rerouted
  // packet through a switch it already transited (forward, hit a now-dead
  // egress downstream, re-packet-in, new path crosses the same switch).
  // Setting this permits a re-injection as long as every earlier visit was
  // closed out (delivered onward or dropped), and scales the delivery cap
  // with the visit count; conservation in finalize() still has to balance.
  void set_allow_revisits(bool allow) { allow_revisits_ = allow; }

  // --- InvariantObserver ---
  void on_packet_injected(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_delivered(const net::Packet& packet, sim::SimTime now) override;
  void on_packet_dropped(const net::Packet& packet, const char* where, sim::SimTime now) override;
  void on_buffer_store(std::uint32_t buffer_id, const net::Packet& packet, bool new_unit,
                       bool flow_granularity, sim::SimTime now) override;
  void on_buffer_release(std::uint32_t buffer_id, const net::Packet& packet,
                         sim::SimTime now) override;
  void on_buffer_expire(std::uint32_t buffer_id, const net::Packet& packet,
                        sim::SimTime now) override;
  void on_buffer_unit_retired(std::uint32_t buffer_id, sim::SimTime now) override;
  void on_packet_in_sent(std::uint32_t xid, const net::Packet& packet, std::uint32_t buffer_id,
                         sim::SimTime now) override;
  void on_pkt_in_dropped(std::uint32_t xid, std::uint32_t buffer_id, sim::SimTime now) override;
  void on_control_message(bool to_controller, const of::OfMessage& msg, sim::SimTime now) override;
  void on_channel_fault(bool to_controller, const of::OfMessage& msg, of::FaultKind kind,
                        sim::SimTime now) override;
  void on_mmu_admit(std::uint32_t queue, std::uint64_t native, std::uint64_t cells,
                    std::uint64_t queue_cells_after, std::uint64_t pool_cells_after,
                    sim::SimTime now) override;
  void on_mmu_release(std::uint32_t queue, std::uint64_t native, std::uint64_t cells,
                      std::uint64_t queue_cells_after, std::uint64_t pool_cells_after,
                      sim::SimTime now) override;

  // End-of-run accounting. With `expect_all_delivered` every tracked payload
  // must have been delivered; otherwise full accounting (delivered + dropped
  // + expired + lost + still-buffered == injected) is enough. Idempotent in
  // the sense that it only appends violations; call once per run.
  void finalize(bool expect_all_delivered);

  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  // Recorded violations (capped; `total_violations` keeps the exact count).
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t total_violations() const { return total_violations_; }
  // Total observer events consumed — a liveness sanity check that the hooks
  // are actually wired (a silent registry checks nothing).
  [[nodiscard]] std::uint64_t events_observed() const { return events_; }

  // Sorted multiset of delivered payload identities, for cross-mechanism
  // equivalence checks (packet- vs flow-granularity must deliver the same
  // payloads).
  [[nodiscard]] std::vector<PayloadId> delivered_payloads() const;

  // Summed per-payload accounting, for cross-validating external ledgers
  // (the obs::FabricObservatory fate ledger checks its totals against these).
  struct AccountTotals {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t expired = 0;
    std::uint64_t lost = 0;
    std::uint64_t buffered = 0;
    std::uint64_t dup_allowance = 0;
  };
  [[nodiscard]] AccountTotals account_totals() const;

  // Human-readable violation digest (at most `max_lines` violations).
  [[nodiscard]] std::string report(std::size_t max_lines = 20) const;

 private:
  struct PacketAccount {
    std::uint32_t injected = 0;
    std::uint32_t delivered = 0;
    std::uint32_t dropped = 0;
    std::uint32_t expired = 0;
    std::uint32_t lost = 0;      // full-frame message discarded (controller
                                 // fault injection or channel loss/outage)
    std::uint32_t buffered = 0;  // currently held by a buffer manager
    // Channel duplication of a frame-carrying message can legitimately make
    // the payload arrive (or get accounted) up to this many extra times;
    // conservation becomes a window instead of an equality.
    std::uint32_t dup_allowance = 0;
  };

  struct LiveUnit {
    bool flow_granularity = false;
    net::FlowKey key;  // meaningful for flow-granularity units
    // Payload multiset currently inside the unit (counts survive warm-up
    // packets that share the untracked flow id).
    std::map<PayloadId, std::uint32_t> contents;
  };

  struct PacketInRecord {
    std::uint32_t buffer_id = of::kNoBuffer;
    std::uint64_t flow_id = 0;
    std::uint32_t seq_in_flow = 0;
    bool has_meta = false;   // switch-side hook ran (metadata known)
    bool seen_on_wire = false;
    // Channel duplication: this many further wire crossings of the same xid
    // are legitimate, not an xid-reuse violation.
    std::uint32_t allowed_wire_crossings = 0;
  };

  // Shadow ledger for the switch's shared-memory MMU (one MMU per registry:
  // fabric runs attach one registry per switch). Every admit/release event
  // must agree with the ledger's own arithmetic — queue occupancy, pool
  // occupancy (sum over queues), and no release exceeding what was admitted.
  struct MmuQueueLedger {
    std::uint64_t native = 0;
    std::uint64_t cells = 0;
  };

  void violate(sim::SimTime when, std::string invariant, std::string detail);
  [[nodiscard]] static bool tracked(const net::Packet& packet);
  [[nodiscard]] PacketAccount* account_for(const net::Packet& packet);
  void check_mmu_event(std::uint32_t queue, std::uint64_t queue_cells_after,
                       std::uint64_t pool_cells_after, sim::SimTime now);

  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t events_ = 0;
  bool finalized_ = false;
  bool allow_proactive_installs_ = false;
  bool allow_revisits_ = false;

  // Ordered map: deterministic iteration keeps reports and finalize output
  // reproducible across runs.
  std::map<PayloadId, PacketAccount> accounts_;
  std::unordered_map<std::uint32_t, LiveUnit> live_units_;
  std::unordered_map<net::FlowKey, std::uint32_t> flow_to_unit_;
  std::unordered_map<std::uint32_t, PacketInRecord> packet_ins_;
  // What the controller has provably seen: 5-tuple -> (sample packet, port).
  std::unordered_map<net::FlowKey, std::pair<net::Packet, std::uint16_t>> controller_saw_;
  sim::SimTime last_send_[2];  // [0] to_switch, [1] to_controller
  bool have_send_[2] = {false, false};
  // Ordered for deterministic pool sums and reports.
  std::map<std::uint32_t, MmuQueueLedger> mmu_queues_;
  std::uint64_t mmu_pool_cells_ = 0;
};

}  // namespace sdnbuf::verify

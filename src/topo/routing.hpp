// Deterministic shortest-path routing with seeded ECMP.
//
// `Router` precomputes, per destination host, the equal-cost next-hop set of
// every switch (BFS distances over the switch graph, so paths are loop-free
// by construction). When a switch has several shortest next hops, the pick
// hashes the flow 5-tuple through `util::mix64` — the repo's standard
// deterministic-sampling construction — so:
//
//   - the same (seed, flow) always takes the same path, on any platform,
//     in any process, regardless of the order links were added (next-hop
//     sets are sorted by peer NodeId before hashing picks an entry);
//   - different flows spread across the equal-cost fan-out (per-flow ECMP,
//     no packet reordering within a flow);
//   - changing the seed re-rolls the path assignment, giving sweeps
//     independent ECMP layouts the same way experiment seeds re-roll
//     workloads.
//
// The controller consults the router per packet_in (per-hop reactive mode)
// or walks the whole path once (full-path install mode); both use the same
// pick function, so the hop-by-hop decisions agree with the precomputed
// path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/flow_key.hpp"
#include "topo/topology.hpp"

namespace sdnbuf::topo {

struct NextHop {
  std::uint16_t port = 0;  // out-port on the deciding switch
  NodeId peer = 0;         // the neighbour that port reaches (switch or host)

  [[nodiscard]] bool operator==(const NextHop&) const = default;
};

class Router {
 public:
  // Validates the topology and builds the next-hop tables. `seed` only
  // perturbs the ECMP picks, never the candidate sets.
  Router(const Topology& topology, std::uint64_t seed);

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Data-plane fault repair: marks a topology link (index into
  // Topology::links()) up or down and rebuilds the next-hop tables with
  // down links excluded. The result is a pure function of the set of down
  // links — independent of the order outages arrived — so failover paths
  // are exactly reproducible, and restoring every link restores the
  // original tables bit-for-bit.
  void set_link_state(std::size_t link_index, bool up);
  [[nodiscard]] bool link_up(std::size_t link_index) const;
  [[nodiscard]] std::size_t links_down() const;

  // Equal-cost next hops of switch `sw` toward `dst_host`, sorted by peer
  // NodeId. Empty when the host is unreachable from `sw` (cannot happen in a
  // validated, connected topology).
  [[nodiscard]] const std::vector<NextHop>& next_hops(NodeId sw, NodeId dst_host) const;

  // The ECMP pick for one flow; nullopt when unreachable.
  [[nodiscard]] std::optional<NextHop> next_hop(NodeId sw, NodeId dst_host,
                                                const net::FlowKey& flow) const;
  [[nodiscard]] std::optional<std::uint16_t> next_hop_port(NodeId sw, NodeId dst_host,
                                                           const net::FlowKey& flow) const;

  // The full node sequence `flow` takes from `from_switch` to `dst_host`
  // (inclusive on both ends): each consecutive pair is directly linked and
  // every hop is this router's own ECMP pick. Empty when unreachable.
  [[nodiscard]] std::vector<NodeId> path(NodeId from_switch, NodeId dst_host,
                                         const net::FlowKey& flow) const;

  // Shortest-path hop count (switches traversed) from a switch to a host;
  // 0 means unreachable.
  [[nodiscard]] unsigned distance(NodeId sw, NodeId dst_host) const;

 private:
  // Recomputes tables_/dists_ from scratch, skipping down links.
  void rebuild();

  const Topology* topo_;
  std::uint64_t seed_;
  std::vector<char> link_down_;  // indexed like Topology::links()
  // tables_[host_index][switch_index] = sorted equal-cost next hops.
  std::vector<std::vector<std::vector<NextHop>>> tables_;
  // dists_[host_index][switch_index] = hops to the host (0 = unreachable).
  std::vector<std::vector<unsigned>> dists_;
};

}  // namespace sdnbuf::topo

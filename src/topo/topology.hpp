// The fabric graph: hosts, switches and links with per-switch port maps.
//
// The paper's testbed is one switch; its reactive `packet_in` overhead
// multiplies across every switch a new flow traverses in a datacenter
// fabric. `Topology` is the validated graph model underneath that scaling
// study: builders for the canonical datacenter shapes (linear chain,
// leaf-spine, k-ary fat-tree) plus arbitrary graphs from an edge list.
//
// Conventions shared with the rest of the repo:
//   - nodes get dense `NodeId`s in creation order; hosts and switches also
//     carry dense per-kind indices (host 0, host 1, ..., switch 0, ...)
//   - switch ports are auto-assigned 1, 2, ... in link-creation order, so a
//     builder's wiring order IS its port map (documented per builder)
//   - dpid convention downstream: switch index i <-> datapath_id i + 1
//   - host addressing is positional: `host_mac(i)` / `host_ip(i)` are pure
//     functions of the host index, and `host_by_mac` inverts the scheme
//
// Builder misuse (self-loops, host-host links, duplicate edges, multi-homed
// hosts, dangling node ids) throws std::invalid_argument; `validate()`
// throws std::runtime_error on structural problems a finished graph can
// still have (isolated hosts, a disconnected fabric). Simulation code never
// catches these — they are configuration errors — but tests can.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/address.hpp"

namespace sdnbuf::topo {

using NodeId = std::uint32_t;

enum class NodeKind : std::uint8_t { Host, Switch };

class Topology {
 public:
  // One end of a node's incident links. Adjacency lists are kept in
  // link-creation order, which for switches equals ascending port order.
  struct Adjacency {
    std::uint16_t port = 0;  // this node's port (hosts always use port 1)
    NodeId peer = 0;
    std::uint16_t peer_port = 0;
    std::size_t link = 0;  // index into links()
  };

  struct Link {
    NodeId a = 0;
    NodeId b = 0;
    std::uint16_t a_port = 0;
    std::uint16_t b_port = 0;
    bool host_edge = false;  // one endpoint is a host (access link)
  };

  NodeId add_host(std::string name = "");
  NodeId add_switch(std::string name = "");

  // Adds a bidirectional link between two existing nodes, auto-assigning the
  // next free port on each switch endpoint. Rejects self-loops, host-host
  // links, duplicate edges (either orientation) and a second link on a host.
  // Returns the link index.
  std::size_t add_link(NodeId a, NodeId b);

  [[nodiscard]] unsigned n_hosts() const { return static_cast<unsigned>(hosts_.size()); }
  [[nodiscard]] unsigned n_switches() const { return static_cast<unsigned>(switches_.size()); }
  [[nodiscard]] unsigned n_nodes() const { return static_cast<unsigned>(nodes_.size()); }
  [[nodiscard]] std::size_t n_links() const { return links_.size(); }

  [[nodiscard]] NodeKind kind(NodeId node) const { return rec(node).kind; }
  [[nodiscard]] bool is_host(NodeId node) const { return kind(node) == NodeKind::Host; }
  [[nodiscard]] const std::string& name(NodeId node) const { return rec(node).name; }
  // The dense per-kind index of a node (host index or switch index).
  [[nodiscard]] unsigned index_of(NodeId node) const { return rec(node).index; }

  [[nodiscard]] NodeId host_id(unsigned host_index) const;
  [[nodiscard]] NodeId switch_id(unsigned switch_index) const;
  [[nodiscard]] const std::vector<NodeId>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<NodeId>& switches() const { return switches_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  [[nodiscard]] const std::vector<Adjacency>& adjacency(NodeId node) const {
    return rec(node).adj;
  }
  // The port `from` uses to reach directly-connected `to`; nullopt when no
  // link exists between the two.
  [[nodiscard]] std::optional<std::uint16_t> port_to(NodeId from, NodeId to) const;

  // A host's single attachment point (valid once the host is linked).
  [[nodiscard]] const Adjacency& attachment(NodeId host) const;

  // Positional host addressing (02:00:00:00:xx:yy via MacAddress::from_index,
  // 10.0.x.y for the IP) — the inverse of host_by_mac.
  [[nodiscard]] static net::MacAddress host_mac(unsigned host_index);
  [[nodiscard]] static net::Ipv4Address host_ip(unsigned host_index);
  // NodeId of the host owning `mac` under the positional scheme; nullopt for
  // foreign MACs (multicast, broadcast, out of range).
  [[nodiscard]] std::optional<NodeId> host_by_mac(const net::MacAddress& mac) const;

  // Structural checks a finished fabric must pass: at least one host and one
  // switch, every host attached exactly once, and the whole graph connected.
  // Throws std::runtime_error naming the first problem found.
  void validate() const;

 private:
  struct NodeRec {
    NodeKind kind = NodeKind::Host;
    unsigned index = 0;  // dense per-kind index
    std::string name;
    std::vector<Adjacency> adj;
    std::uint16_t next_port = 1;
  };

  [[nodiscard]] const NodeRec& rec(NodeId node) const;
  [[nodiscard]] NodeRec& rec(NodeId node);

  std::vector<NodeRec> nodes_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> switches_;
  std::vector<Link> links_;
};

// --- validated fabric builders ---
//
// Every builder returns a topology that passes validate(); the wiring order
// (and therefore the port map) is part of each builder's contract.

// Host1 -- sw1 -- sw2 -- ... -- swN -- Host2. Port map: port 1 faces Host1,
// port 2 faces Host2 on every switch — the ChainTestbed convention.
[[nodiscard]] Topology make_chain(unsigned n_switches);

// Two-tier Clos: every leaf connects to every spine; hosts attach to leaves.
// Switch indices: leaves 0..n_leaves-1, then spines. Host index h lives on
// leaf h / hosts_per_leaf. Leaf ports: 1..H hosts, H+1..H+S spines (spine j
// at port H+1+j); spine ports: 1..L in leaf order.
[[nodiscard]] Topology make_leaf_spine(unsigned n_spines, unsigned n_leaves,
                                       unsigned hosts_per_leaf);

// k-ary fat-tree (k even, >= 2): (k/2)^2 cores, k pods of k/2 aggregation +
// k/2 edge switches, k/2 hosts per edge — k^3/4 hosts total. Switch indices:
// cores first, then per pod aggs then edges. Edge ports: 1..k/2 hosts,
// k/2+1..k aggs; agg ports: 1..k/2 edges, k/2+1..k cores (agg j reaches core
// group j*(k/2)..j*(k/2)+k/2-1); core ports: 1..k in pod order.
[[nodiscard]] Topology make_fat_tree(unsigned k);

// Arbitrary graph: hosts get NodeIds 0..n_hosts-1, switches follow; `edges`
// use those NodeIds. Builder-level link validation applies per edge and the
// result is validate()d before being returned.
[[nodiscard]] Topology from_edge_list(unsigned n_hosts, unsigned n_switches,
                                      const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace sdnbuf::topo

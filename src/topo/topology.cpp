#include "topo/topology.hpp"

#include <set>
#include <stdexcept>

namespace sdnbuf::topo {

namespace {

[[noreturn]] void reject(const std::string& what) { throw std::invalid_argument("topology: " + what); }

}  // namespace

const Topology::NodeRec& Topology::rec(NodeId node) const {
  if (node >= nodes_.size()) reject("unknown node id " + std::to_string(node));
  return nodes_[node];
}

Topology::NodeRec& Topology::rec(NodeId node) {
  return const_cast<NodeRec&>(static_cast<const Topology*>(this)->rec(node));
}

NodeId Topology::add_host(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  NodeRec n;
  n.kind = NodeKind::Host;
  n.index = static_cast<unsigned>(hosts_.size());
  n.name = name.empty() ? "h" + std::to_string(n.index + 1) : std::move(name);
  nodes_.push_back(std::move(n));
  hosts_.push_back(id);
  return id;
}

NodeId Topology::add_switch(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  NodeRec n;
  n.kind = NodeKind::Switch;
  n.index = static_cast<unsigned>(switches_.size());
  n.name = name.empty() ? "sw" + std::to_string(n.index + 1) : std::move(name);
  nodes_.push_back(std::move(n));
  switches_.push_back(id);
  return id;
}

std::size_t Topology::add_link(NodeId a, NodeId b) {
  NodeRec& ra = rec(a);
  NodeRec& rb = rec(b);
  if (a == b) reject("self-loop on " + ra.name);
  if (ra.kind == NodeKind::Host && rb.kind == NodeKind::Host) {
    reject("host-host link " + ra.name + " -- " + rb.name);
  }
  for (const Adjacency& adj : ra.adj) {
    if (adj.peer == b) reject("duplicate link " + ra.name + " -- " + rb.name);
  }
  if (ra.kind == NodeKind::Host && !ra.adj.empty()) reject("host " + ra.name + " multi-homed");
  if (rb.kind == NodeKind::Host && !rb.adj.empty()) reject("host " + rb.name + " multi-homed");

  Link link;
  link.a = a;
  link.b = b;
  link.a_port = ra.next_port++;
  link.b_port = rb.next_port++;
  link.host_edge = ra.kind == NodeKind::Host || rb.kind == NodeKind::Host;
  const std::size_t index = links_.size();
  ra.adj.push_back(Adjacency{link.a_port, b, link.b_port, index});
  rb.adj.push_back(Adjacency{link.b_port, a, link.a_port, index});
  links_.push_back(link);
  return index;
}

NodeId Topology::host_id(unsigned host_index) const {
  if (host_index >= hosts_.size()) reject("host index " + std::to_string(host_index) + " out of range");
  return hosts_[host_index];
}

NodeId Topology::switch_id(unsigned switch_index) const {
  if (switch_index >= switches_.size()) {
    reject("switch index " + std::to_string(switch_index) + " out of range");
  }
  return switches_[switch_index];
}

std::optional<std::uint16_t> Topology::port_to(NodeId from, NodeId to) const {
  for (const Adjacency& adj : rec(from).adj) {
    if (adj.peer == to) return adj.port;
  }
  return std::nullopt;
}

const Topology::Adjacency& Topology::attachment(NodeId host) const {
  const NodeRec& r = rec(host);
  if (r.kind != NodeKind::Host) reject(r.name + " is not a host");
  if (r.adj.empty()) reject("host " + r.name + " is not attached");
  return r.adj.front();
}

net::MacAddress Topology::host_mac(unsigned host_index) {
  // from_index(0) would be 02:00:00:00:00:00; start at 1 (and stay
  // compatible with the single-switch testbed's host1/host2 MACs).
  return net::MacAddress::from_index(static_cast<std::uint16_t>(host_index + 1));
}

net::Ipv4Address Topology::host_ip(unsigned host_index) {
  // 10.0.x.y, skipping .0 host octets; supports ~64k hosts.
  return net::Ipv4Address::from_octets(10, 0, static_cast<std::uint8_t>(host_index / 250),
                                       static_cast<std::uint8_t>(host_index % 250 + 1));
}

std::optional<NodeId> Topology::host_by_mac(const net::MacAddress& mac) const {
  if (mac.is_multicast()) return std::nullopt;
  const auto& o = mac.octets();
  if (o[0] != 0x02 || o[1] != 0 || o[2] != 0 || o[3] != 0) return std::nullopt;
  const unsigned index = (static_cast<unsigned>(o[4]) << 8 | o[5]);
  if (index == 0 || index > hosts_.size()) return std::nullopt;
  return hosts_[index - 1];
}

void Topology::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::runtime_error("topology: " + what);
  };
  if (hosts_.empty()) fail("no hosts");
  if (switches_.empty()) fail("no switches");
  for (const NodeId h : hosts_) {
    if (nodes_[h].adj.size() != 1) {
      fail("host " + nodes_[h].name + " has " + std::to_string(nodes_[h].adj.size()) +
           " links (want exactly 1)");
    }
  }
  // Connectivity: BFS over everything from node 0.
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> queue{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const NodeId cur = queue.back();
    queue.pop_back();
    for (const Adjacency& adj : nodes_[cur].adj) {
      if (!seen[adj.peer]) {
        seen[adj.peer] = true;
        ++reached;
        queue.push_back(adj.peer);
      }
    }
  }
  if (reached != nodes_.size()) {
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (!seen[n]) fail("disconnected: " + nodes_[n].name + " unreachable from " + nodes_[0].name);
    }
  }
}

Topology make_chain(unsigned n_switches) {
  if (n_switches < 1) reject("a chain needs at least one switch");
  Topology t;
  const NodeId h1 = t.add_host();
  std::vector<NodeId> sws;
  sws.reserve(n_switches);
  for (unsigned i = 0; i < n_switches; ++i) sws.push_back(t.add_switch());
  // Wiring order fixes the port map: h1 first gives every switch port 1 on
  // its Host1 side, port 2 on its Host2 side.
  t.add_link(h1, sws.front());
  for (unsigned i = 1; i < n_switches; ++i) t.add_link(sws[i - 1], sws[i]);
  const NodeId h2 = t.add_host();
  t.add_link(sws.back(), h2);
  t.validate();
  return t;
}

Topology make_leaf_spine(unsigned n_spines, unsigned n_leaves, unsigned hosts_per_leaf) {
  if (n_spines < 1 || n_leaves < 1 || hosts_per_leaf < 1) {
    reject("leaf-spine needs at least one spine, leaf and host per leaf");
  }
  Topology t;
  std::vector<NodeId> leaves, spines;
  for (unsigned l = 0; l < n_leaves; ++l) leaves.push_back(t.add_switch("leaf" + std::to_string(l + 1)));
  for (unsigned s = 0; s < n_spines; ++s) spines.push_back(t.add_switch("spine" + std::to_string(s + 1)));
  // Hosts first per leaf (leaf ports 1..H), then the spine uplinks
  // (H+1..H+S); spines see leaves in order (ports 1..L).
  for (unsigned l = 0; l < n_leaves; ++l) {
    for (unsigned h = 0; h < hosts_per_leaf; ++h) t.add_link(t.add_host(), leaves[l]);
  }
  for (unsigned l = 0; l < n_leaves; ++l) {
    for (unsigned s = 0; s < n_spines; ++s) t.add_link(leaves[l], spines[s]);
  }
  t.validate();
  return t;
}

Topology make_fat_tree(unsigned k) {
  if (k < 2 || k % 2 != 0) reject("fat-tree arity must be even and >= 2");
  const unsigned half = k / 2;
  Topology t;
  std::vector<NodeId> cores;
  for (unsigned c = 0; c < half * half; ++c) cores.push_back(t.add_switch("core" + std::to_string(c + 1)));
  std::vector<std::vector<NodeId>> aggs(k), edges(k);
  for (unsigned p = 0; p < k; ++p) {
    for (unsigned a = 0; a < half; ++a) {
      aggs[p].push_back(t.add_switch("p" + std::to_string(p) + "a" + std::to_string(a + 1)));
    }
    for (unsigned e = 0; e < half; ++e) {
      edges[p].push_back(t.add_switch("p" + std::to_string(p) + "e" + std::to_string(e + 1)));
    }
  }
  for (unsigned p = 0; p < k; ++p) {
    // Edge ports 1..k/2 go to hosts, k/2+1..k to the pod's aggs.
    for (unsigned e = 0; e < half; ++e) {
      for (unsigned h = 0; h < half; ++h) t.add_link(t.add_host(), edges[p][e]);
    }
    for (unsigned e = 0; e < half; ++e) {
      for (unsigned a = 0; a < half; ++a) t.add_link(edges[p][e], aggs[p][a]);
    }
    // Agg j uplinks to core group j: cores j*(k/2) .. j*(k/2)+k/2-1.
    for (unsigned a = 0; a < half; ++a) {
      for (unsigned j = 0; j < half; ++j) t.add_link(aggs[p][a], cores[a * half + j]);
    }
  }
  t.validate();
  return t;
}

Topology from_edge_list(unsigned n_hosts, unsigned n_switches,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Topology t;
  for (unsigned h = 0; h < n_hosts; ++h) t.add_host();
  for (unsigned s = 0; s < n_switches; ++s) t.add_switch("s" + std::to_string(s + 1));
  for (const auto& [a, b] : edges) t.add_link(a, b);
  t.validate();
  return t;
}

}  // namespace sdnbuf::topo

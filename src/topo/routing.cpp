#include "topo/routing.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdnbuf::topo {

Router::Router(const Topology& topology, std::uint64_t seed) : topo_(&topology), seed_(seed) {
  topo_->validate();
  link_down_.assign(topo_->links().size(), 0);
  rebuild();
}

void Router::set_link_state(std::size_t link_index, bool up) {
  SDNBUF_CHECK_MSG(link_index < link_down_.size(), "unknown link index");
  const char down = up ? 0 : 1;
  if (link_down_[link_index] == down) return;
  link_down_[link_index] = down;
  rebuild();
}

bool Router::link_up(std::size_t link_index) const {
  SDNBUF_CHECK_MSG(link_index < link_down_.size(), "unknown link index");
  return link_down_[link_index] == 0;
}

std::size_t Router::links_down() const {
  return static_cast<std::size_t>(std::count(link_down_.begin(), link_down_.end(), 1));
}

void Router::rebuild() {
  const unsigned n_hosts = topo_->n_hosts();
  const unsigned n_switches = topo_->n_switches();
  tables_.assign(n_hosts, {});
  dists_.assign(n_hosts, std::vector<unsigned>(n_switches, 0));

  for (unsigned hi = 0; hi < n_hosts; ++hi) {
    const NodeId host = topo_->host_id(hi);
    const Topology::Adjacency& attach = topo_->attachment(host);
    auto& dist = dists_[hi];
    auto& table = tables_[hi];
    table.assign(n_switches, {});
    // A dead attachment link makes the host unreachable from everywhere.
    if (link_down_[attach.link] != 0) continue;

    // BFS over the switch graph from the attachment switch; distance counts
    // switches traversed (attachment switch = 1). Down links do not exist
    // for the traversal.
    std::deque<NodeId> queue{attach.peer};
    dist[topo_->index_of(attach.peer)] = 1;
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      const unsigned d = dist[topo_->index_of(cur)];
      for (const Topology::Adjacency& adj : topo_->adjacency(cur)) {
        if (topo_->is_host(adj.peer)) continue;
        if (link_down_[adj.link] != 0) continue;
        unsigned& pd = dist[topo_->index_of(adj.peer)];
        if (pd == 0) {
          pd = d + 1;
          queue.push_back(adj.peer);
        }
      }
    }

    // Next hops: strictly-downhill neighbours (or the host itself at the
    // attachment switch), sorted by peer id so the candidate order — and
    // therefore the hash pick — is independent of link insertion order.
    for (unsigned si = 0; si < n_switches; ++si) {
      const NodeId sw = topo_->switch_id(si);
      const unsigned d = dist[si];
      if (d == 0) continue;  // unreachable
      auto& hops = table[si];
      if (sw == attach.peer) {
        hops.push_back(NextHop{attach.peer_port, host});
        continue;
      }
      for (const Topology::Adjacency& adj : topo_->adjacency(sw)) {
        if (topo_->is_host(adj.peer)) continue;
        if (link_down_[adj.link] != 0) continue;
        if (dist[topo_->index_of(adj.peer)] == d - 1) {
          hops.push_back(NextHop{adj.port, adj.peer});
        }
      }
      std::sort(hops.begin(), hops.end(),
                [](const NextHop& a, const NextHop& b) { return a.peer < b.peer; });
    }
  }
}

const std::vector<NextHop>& Router::next_hops(NodeId sw, NodeId dst_host) const {
  SDNBUF_CHECK_MSG(!topo_->is_host(sw), "next_hops wants a switch");
  SDNBUF_CHECK_MSG(topo_->is_host(dst_host), "next_hops wants a destination host");
  return tables_[topo_->index_of(dst_host)][topo_->index_of(sw)];
}

std::optional<NextHop> Router::next_hop(NodeId sw, NodeId dst_host,
                                        const net::FlowKey& flow) const {
  const auto& hops = next_hops(sw, dst_host);
  if (hops.empty()) return std::nullopt;
  if (hops.size() == 1) return hops.front();
  // Per-flow ECMP: mix the stable 5-tuple hash with the router seed and the
  // deciding switch, so consecutive hops of one flow draw independently.
  const std::uint64_t h =
      util::mix64(flow.hash() ^ seed_ ^ (static_cast<std::uint64_t>(sw) * 0x9e3779b97f4a7c15ULL));
  return hops[h % hops.size()];
}

std::optional<std::uint16_t> Router::next_hop_port(NodeId sw, NodeId dst_host,
                                                   const net::FlowKey& flow) const {
  const auto hop = next_hop(sw, dst_host, flow);
  if (!hop) return std::nullopt;
  return hop->port;
}

std::vector<NodeId> Router::path(NodeId from_switch, NodeId dst_host,
                                 const net::FlowKey& flow) const {
  std::vector<NodeId> nodes{from_switch};
  NodeId cur = from_switch;
  // BFS distances decrease strictly along the walk, so n_switches + 1 steps
  // always suffice.
  for (unsigned step = 0; step <= topo_->n_switches(); ++step) {
    const auto hop = next_hop(cur, dst_host, flow);
    if (!hop) return {};
    nodes.push_back(hop->peer);
    if (hop->peer == dst_host) return nodes;
    cur = hop->peer;
  }
  SDNBUF_CHECK_MSG(false, "routing walk did not terminate");
  return {};
}

unsigned Router::distance(NodeId sw, NodeId dst_host) const {
  SDNBUF_CHECK_MSG(!topo_->is_host(sw), "distance wants a switch");
  SDNBUF_CHECK_MSG(topo_->is_host(dst_host), "distance wants a destination host");
  return dists_[topo_->index_of(dst_host)][topo_->index_of(sw)];
}

}  // namespace sdnbuf::topo

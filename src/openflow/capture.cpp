#include "openflow/capture.hpp"

#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace sdnbuf::of {

const char* direction_name(Direction d) {
  return d == Direction::ToController ? "sw->ctrl" : "ctrl->sw";
}

namespace {

std::string dissect_match(const Match& m) { return m.to_string(); }

struct Dissector {
  std::ostringstream os;

  std::string operator()(const Hello&) { return "hello"; }
  std::string operator()(const Error& m) {
    os << "error type=" << static_cast<int>(m.type) << " code=" << static_cast<int>(m.code)
       << " data=" << m.data.size() << "B";
    return os.str();
  }
  std::string operator()(const EchoRequest&) { return "echo_request"; }
  std::string operator()(const EchoReply&) { return "echo_reply"; }
  std::string operator()(const FeaturesRequest&) { return "features_request"; }
  std::string operator()(const FeaturesReply& m) {
    os << "features_reply dpid=0x" << std::hex << m.datapath_id << std::dec
       << " n_buffers=" << m.n_buffers << " ports=" << m.ports.size();
    return os.str();
  }
  std::string operator()(const PacketIn& m) {
    os << "packet_in buffer_id=";
    if (m.buffer_id == kNoBuffer) {
      os << "NO_BUFFER";
    } else {
      os << m.buffer_id;
    }
    os << " in_port=" << m.in_port << " total_len=" << m.total_len << " data=" << m.data.size()
       << "B reason="
       << (m.reason == PacketInReason::NoMatch     ? "no_match"
           : m.reason == PacketInReason::Action    ? "action"
           : m.reason == PacketInReason::FlowResend ? "flow_resend"
                                                     : "?");
    return os.str();
  }
  std::string operator()(const PacketOut& m) {
    os << "packet_out buffer_id=";
    if (m.buffer_id == kNoBuffer) {
      os << "NO_BUFFER";
    } else {
      os << m.buffer_id;
    }
    os << " in_port=" << m.in_port << " actions=" << to_string(m.actions)
       << " data=" << m.data.size() << "B";
    return os.str();
  }
  std::string operator()(const FlowMod& m) {
    os << "flow_mod "
       << (m.command == FlowModCommand::Add      ? "add"
           : m.command == FlowModCommand::Delete ? "delete"
                                                 : "modify")
       << " prio=" << m.priority << " idle=" << m.idle_timeout_s << "s";
    if (m.buffer_id != kNoBuffer) os << " buffer_id=" << m.buffer_id;
    os << " actions=" << to_string(m.actions) << ' ' << dissect_match(m.match);
    return os.str();
  }
  std::string operator()(const FlowRemoved& m) {
    os << "flow_removed reason=" << static_cast<int>(m.reason)
       << " packets=" << m.packet_count << " bytes=" << m.byte_count << ' '
       << dissect_match(m.match);
    return os.str();
  }
  std::string operator()(const PortStatus& m) {
    os << "port_status "
       << (m.reason == PortStatusReason::Add      ? "add"
           : m.reason == PortStatusReason::Delete ? "delete"
                                                  : "modify")
       << " port=" << m.desc.port_no << (m.desc.link_down ? " link_down" : "");
    return os.str();
  }
  std::string operator()(const FlowStatsRequest& m) {
    os << "flow_stats_request " << dissect_match(m.match);
    return os.str();
  }
  std::string operator()(const FlowStatsReply& m) {
    os << "flow_stats_reply entries=" << m.flows.size();
    return os.str();
  }
  std::string operator()(const AggregateStatsRequest& m) {
    os << "aggregate_stats_request " << dissect_match(m.match);
    return os.str();
  }
  std::string operator()(const AggregateStatsReply& m) {
    os << "aggregate_stats_reply flows=" << m.flow_count << " packets=" << m.packet_count
       << " bytes=" << m.byte_count;
    return os.str();
  }
  std::string operator()(const PortStatsRequest& m) {
    os << "port_stats_request port="
       << (m.port_no == kPortNone ? std::string("all") : std::to_string(m.port_no));
    return os.str();
  }
  std::string operator()(const PortStatsReply& m) {
    os << "port_stats_reply ports=" << m.ports.size();
    return os.str();
  }
  std::string operator()(const BarrierRequest&) { return "barrier_request"; }
  std::string operator()(const BarrierReply&) { return "barrier_reply"; }
  std::string operator()(const FlowSample& m) {
    os << "flow_sample seq=" << m.sample_seq << " bytes=" << m.frame_bytes << " proto="
       << static_cast<unsigned>(m.protocol);
    return os.str();
  }
};

}  // namespace

std::string dissect(const OfMessage& msg) { return std::visit(Dissector{}, msg); }

void ChannelCapture::attach(Channel& channel) {
  channel.set_tap([this](bool to_controller, const OfMessage& msg, std::size_t wire_bytes,
                         sim::SimTime when) {
    record(to_controller ? Direction::ToController : Direction::ToSwitch, msg, wire_bytes, when);
  });
}

void ChannelCapture::record(Direction direction, const OfMessage& msg, std::size_t wire_bytes,
                            sim::SimTime now) {
  if (direction == Direction::ToController) {
    ++to_controller_messages_;
    to_controller_bytes_ += wire_bytes;
  } else {
    ++to_switch_messages_;
    to_switch_bytes_ += wire_bytes;
  }
  if (records_.size() >= max_records_) {
    records_.pop_front();
    ++dropped_records_;
  }
  records_.push_back(CaptureRecord{now, direction, message_type(msg), message_xid(msg),
                                   wire_bytes, dissect(msg)});
}

std::uint64_t ChannelCapture::total_messages(Direction d) const {
  return d == Direction::ToController ? to_controller_messages_ : to_switch_messages_;
}

std::uint64_t ChannelCapture::total_bytes(Direction d) const {
  return d == Direction::ToController ? to_controller_bytes_ : to_switch_bytes_;
}

void ChannelCapture::dump(std::ostream& out, const std::string& type_filter) const {
  for (const auto& r : records_) {
    if (!type_filter.empty() && type_filter != msg_type_name(r.type)) continue;
    out << r.timestamp.to_string() << "  " << direction_name(r.direction) << "  xid=" << r.xid
        << "  " << r.wire_bytes << "B  " << r.summary << '\n';
  }
}

void ChannelCapture::clear() {
  records_.clear();
  to_controller_messages_ = 0;
  to_switch_messages_ = 0;
  to_controller_bytes_ = 0;
  to_switch_bytes_ = 0;
  dropped_records_ = 0;
}

}  // namespace sdnbuf::of

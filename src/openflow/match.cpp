#include "openflow/match.hpp"

#include <sstream>

#include "openflow/constants.hpp"
#include "util/byte_order.hpp"
#include "util/check.hpp"

namespace sdnbuf::of {

using util::get_be16;
using util::get_be32;
using util::put_be16;
using util::put_be32;
using util::put_pad;

namespace {

// Mask of IP bits that must agree, given a count of ignored low bits.
std::uint32_t prefix_mask(int ignored_bits) {
  if (ignored_bits >= 32) return 0;
  return ~std::uint32_t{0} << ignored_bits;
}

std::uint16_t l4_src(const net::Packet& p) {
  if (p.ip.protocol == net::kIpProtoUdp) return p.udp.src_port;
  if (p.ip.protocol == net::kIpProtoTcp) return p.tcp.src_port;
  return 0;
}

std::uint16_t l4_dst(const net::Packet& p) {
  if (p.ip.protocol == net::kIpProtoUdp) return p.udp.dst_port;
  if (p.ip.protocol == net::kIpProtoTcp) return p.tcp.dst_port;
  return 0;
}

}  // namespace

Match Match::exact_from(const net::Packet& p, std::uint16_t in_port) {
  Match m;
  m.wildcards = 0;
  m.in_port = in_port;
  m.dl_src = p.eth.src;
  m.dl_dst = p.eth.dst;
  m.dl_type = p.eth.ethertype;
  if (p.eth.ethertype == net::kEtherTypeIpv4) {
    m.nw_tos = p.ip.dscp;
    m.nw_proto = p.ip.protocol;
    m.nw_src = p.ip.src;
    m.nw_dst = p.ip.dst;
    m.tp_src = l4_src(p);
    m.tp_dst = l4_dst(p);
  } else {
    // Non-IP: network/transport fields are irrelevant; wildcard them.
    m.wildcards |= kWildcardNwProto | kWildcardNwTos | kWildcardTpSrc | kWildcardTpDst |
                   kWildcardNwSrcMask | kWildcardNwDstMask;
  }
  return m;
}

int Match::nw_src_ignored_bits() const {
  return static_cast<int>((wildcards & kWildcardNwSrcMask) >> kWildcardNwSrcShift);
}

int Match::nw_dst_ignored_bits() const {
  return static_cast<int>((wildcards & kWildcardNwDstMask) >> kWildcardNwDstShift);
}

void Match::set_nw_src_ignored_bits(int bits) {
  SDNBUF_CHECK(bits >= 0 && bits <= 63);
  wildcards = (wildcards & ~kWildcardNwSrcMask) |
              (static_cast<std::uint32_t>(bits) << kWildcardNwSrcShift);
}

void Match::set_nw_dst_ignored_bits(int bits) {
  SDNBUF_CHECK(bits >= 0 && bits <= 63);
  wildcards = (wildcards & ~kWildcardNwDstMask) |
              (static_cast<std::uint32_t>(bits) << kWildcardNwDstShift);
}

bool Match::matches(const net::Packet& p, std::uint16_t port) const {
  if (!(wildcards & kWildcardInPort) && in_port != port) return false;
  if (!(wildcards & kWildcardDlSrc) && dl_src != p.eth.src) return false;
  if (!(wildcards & kWildcardDlDst) && dl_dst != p.eth.dst) return false;
  if (!(wildcards & kWildcardDlType) && dl_type != p.eth.ethertype) return false;
  // IP-layer fields only constrain IPv4 packets; for non-IP traffic OF 1.0
  // treats them as unconstrained.
  if (p.eth.ethertype != net::kEtherTypeIpv4) return true;
  if (!(wildcards & kWildcardNwTos) && nw_tos != p.ip.dscp) return false;
  if (!(wildcards & kWildcardNwProto) && nw_proto != p.ip.protocol) return false;
  const std::uint32_t src_mask = prefix_mask(nw_src_ignored_bits());
  if ((p.ip.src.value() & src_mask) != (nw_src.value() & src_mask)) return false;
  const std::uint32_t dst_mask = prefix_mask(nw_dst_ignored_bits());
  if ((p.ip.dst.value() & dst_mask) != (nw_dst.value() & dst_mask)) return false;
  if (!(wildcards & kWildcardTpSrc) && tp_src != l4_src(p)) return false;
  if (!(wildcards & kWildcardTpDst) && tp_dst != l4_dst(p)) return false;
  return true;
}

bool Match::subsumes(const Match& other) const {
  auto field_ok = [&](std::uint32_t bit, auto mine, auto theirs) {
    if (wildcards & bit) return true;              // we don't constrain it
    if (other.wildcards & bit) return false;       // they allow anything, we don't
    return mine == theirs;
  };
  if (!field_ok(kWildcardInPort, in_port, other.in_port)) return false;
  if (!field_ok(kWildcardDlSrc, dl_src, other.dl_src)) return false;
  if (!field_ok(kWildcardDlDst, dl_dst, other.dl_dst)) return false;
  if (!field_ok(kWildcardDlType, dl_type, other.dl_type)) return false;
  if (!field_ok(kWildcardNwTos, nw_tos, other.nw_tos)) return false;
  if (!field_ok(kWildcardNwProto, nw_proto, other.nw_proto)) return false;
  if (!field_ok(kWildcardTpSrc, tp_src, other.tp_src)) return false;
  if (!field_ok(kWildcardTpDst, tp_dst, other.tp_dst)) return false;
  // Prefixes: ours must be no longer than theirs and agree on the kept bits.
  const int my_src_ign = nw_src_ignored_bits();
  const int their_src_ign = other.nw_src_ignored_bits();
  if (my_src_ign < their_src_ign) return false;
  const std::uint32_t src_mask = prefix_mask(my_src_ign);
  if ((nw_src.value() & src_mask) != (other.nw_src.value() & src_mask)) return false;
  const int my_dst_ign = nw_dst_ignored_bits();
  const int their_dst_ign = other.nw_dst_ignored_bits();
  if (my_dst_ign < their_dst_ign) return false;
  const std::uint32_t dst_mask = prefix_mask(my_dst_ign);
  if ((nw_dst.value() & dst_mask) != (other.nw_dst.value() & dst_mask)) return false;
  return true;
}

void Match::encode(std::vector<std::uint8_t>& out) const {
  put_be32(out, wildcards);
  put_be16(out, in_port);
  out.insert(out.end(), dl_src.octets().begin(), dl_src.octets().end());
  out.insert(out.end(), dl_dst.octets().begin(), dl_dst.octets().end());
  put_be16(out, dl_vlan);
  out.push_back(dl_vlan_pcp);
  put_pad(out, 1);
  put_be16(out, dl_type);
  out.push_back(nw_tos);
  out.push_back(nw_proto);
  put_pad(out, 2);
  put_be32(out, nw_src.value());
  put_be32(out, nw_dst.value());
  put_be16(out, tp_src);
  put_be16(out, tp_dst);
}

std::optional<Match> Match::decode(std::span<const std::uint8_t> in) {
  if (in.size() < kMatchSize) return std::nullopt;
  Match m;
  m.wildcards = get_be32(in, 0);
  m.in_port = get_be16(in, 4);
  std::array<std::uint8_t, 6> mac{};
  std::copy(in.begin() + 6, in.begin() + 12, mac.begin());
  m.dl_src = net::MacAddress{mac};
  std::copy(in.begin() + 12, in.begin() + 18, mac.begin());
  m.dl_dst = net::MacAddress{mac};
  m.dl_vlan = get_be16(in, 18);
  m.dl_vlan_pcp = in[20];
  m.dl_type = get_be16(in, 22);
  m.nw_tos = in[24];
  m.nw_proto = in[25];
  m.nw_src = net::Ipv4Address{get_be32(in, 28)};
  m.nw_dst = net::Ipv4Address{get_be32(in, 32)};
  m.tp_src = get_be16(in, 36);
  m.tp_dst = get_be16(in, 38);
  return m;
}

std::string Match::to_string() const {
  std::ostringstream os;
  os << "match{";
  if (!(wildcards & kWildcardInPort)) os << "in_port=" << in_port << ' ';
  if (!(wildcards & kWildcardDlSrc)) os << "dl_src=" << dl_src.to_string() << ' ';
  if (!(wildcards & kWildcardDlDst)) os << "dl_dst=" << dl_dst.to_string() << ' ';
  if (!(wildcards & kWildcardDlType)) os << "dl_type=0x" << std::hex << dl_type << std::dec << ' ';
  if (!(wildcards & kWildcardNwProto)) os << "nw_proto=" << int{nw_proto} << ' ';
  if (nw_src_ignored_bits() < 32) {
    os << "nw_src=" << nw_src.to_string() << '/' << (32 - nw_src_ignored_bits()) << ' ';
  }
  if (nw_dst_ignored_bits() < 32) {
    os << "nw_dst=" << nw_dst.to_string() << '/' << (32 - nw_dst_ignored_bits()) << ' ';
  }
  if (!(wildcards & kWildcardTpSrc)) os << "tp_src=" << tp_src << ' ';
  if (!(wildcards & kWildcardTpDst)) os << "tp_dst=" << tp_dst << ' ';
  os << '}';
  return os.str();
}

}  // namespace sdnbuf::of

// OpenFlow protocol constants (OpenFlow 1.0 wire model).
//
// The reproduction uses the OF 1.0 message layout: it is the protocol OVS
// and Floodlight speak by default in the paper's testbed era, its encodings
// are compact and fully specified, and the buffer_id semantics the paper
// builds on (packet buffering at the switch, `OFP_NO_BUFFER`,
// `miss_send_len`) are identical in later versions.
#pragma once

#include <cstdint>

namespace sdnbuf::of {

inline constexpr std::uint8_t kVersion = 0x01;

// ofp_type
enum class MsgType : std::uint8_t {
  Hello = 0,
  Error = 1,
  EchoRequest = 2,
  EchoReply = 3,
  Vendor = 4,
  FeaturesRequest = 5,
  FeaturesReply = 6,
  PacketIn = 10,
  FlowRemoved = 11,
  PortStatus = 12,
  PacketOut = 13,
  FlowMod = 14,
  StatsRequest = 16,
  StatsReply = 17,
  BarrierRequest = 18,
  BarrierReply = 19,
};

// One-past the largest MsgType enumerator; per-type tables (message
// counters) must cover at least this many slots.
inline constexpr std::size_t kMsgTypeSlots = static_cast<std::size_t>(MsgType::BarrierReply) + 1;

// Channel fault-injection event kinds (see of::FaultProfile).
enum class FaultKind : std::uint8_t {
  Loss = 0,       // the message left the sender but never arrived
  Duplicate = 1,  // a second copy of the message was delivered
  Outage = 2,     // the connection was down; the message never hit the wire
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

// ofp_stats_types (subset of OF 1.0).
enum class StatsType : std::uint16_t {
  Flow = 1,
  Aggregate = 2,
  Port = 4,
};

// ofp_error_type / generic codes (subset).
enum class ErrorType : std::uint16_t {
  BadRequest = 1,
  BadAction = 2,
  FlowModFailed = 3,
};

enum class ErrorCode : std::uint16_t {
  // BadRequest codes
  BadVersion = 0,
  BadType = 1,
  BufferUnknown = 8,   // OFPBRC_BUFFER_UNKNOWN
  // FlowModFailed codes (interpretation depends on the type)
  AllTablesFull = 0,
};

[[nodiscard]] const char* msg_type_name(MsgType t);

// Special buffer id: "no packet buffered, full frame in the data field".
inline constexpr std::uint32_t kNoBuffer = 0xffffffff;

// Default number of bytes of a miss-match packet sent to the controller when
// the packet is buffered (ofp_switch_config.miss_send_len default).
inline constexpr std::uint16_t kDefaultMissSendLen = 128;

// ofp_port special values (OF 1.0 uses 16-bit port numbers).
inline constexpr std::uint16_t kPortMax = 0xff00;
inline constexpr std::uint16_t kPortInPort = 0xfff8;
inline constexpr std::uint16_t kPortFlood = 0xfffb;
inline constexpr std::uint16_t kPortAll = 0xfffc;
inline constexpr std::uint16_t kPortController = 0xfffd;
inline constexpr std::uint16_t kPortLocal = 0xfffe;
inline constexpr std::uint16_t kPortNone = 0xffff;

// ofp_packet_in_reason
enum class PacketInReason : std::uint8_t {
  NoMatch = 0,
  Action = 1,
  // Extension used by the flow-granularity buffer mechanism (Algorithm 1,
  // line 13): a re-request after the response timeout expired. Values >= 0x80
  // are outside the standard range, mirroring an experimenter extension.
  FlowResend = 0x80,
};

// ofp_flow_mod_command
enum class FlowModCommand : std::uint8_t {
  Add = 0,
  Modify = 1,
  ModifyStrict = 2,
  Delete = 3,
  DeleteStrict = 4,
};

// ofp_flow_removed reason
enum class FlowRemovedReason : std::uint8_t {
  IdleTimeout = 0,
  HardTimeout = 1,
  Delete = 2,
  // Extension: evicted to make room in a full table (OVS behaviour).
  Eviction = 0x80,
};

// ofp_port_status reason
enum class PortStatusReason : std::uint8_t {
  Add = 0,     // the port exists (sent when a dead port comes back up)
  Delete = 1,  // the port is gone (link down / switch-side failure)
  Modify = 2,  // attribute change
};

// ofp_port_state: the link-down bit of the phy-port `state` word.
inline constexpr std::uint32_t kPortStateLinkDown = 1u << 0;

// ofp_flow_mod flags
inline constexpr std::uint16_t kFlowModSendFlowRem = 1 << 0;

// Vendor (experimenter) extension carrying sampled flow records to the
// controller's FlowMonitor (DESIGN.md §15). The vendor id is a private-use
// value; subtype 1 is the only message defined so far.
inline constexpr std::uint32_t kSdnbufVendorId = 0x00005db1;
inline constexpr std::uint16_t kFlowSampleSubtype = 1;

// Fixed part sizes (bytes) of the OF 1.0 wire structures.
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::size_t kMatchSize = 40;
inline constexpr std::size_t kPacketInFixedSize = kHeaderSize + 10;   // 18
inline constexpr std::size_t kPacketOutFixedSize = kHeaderSize + 8;   // 16
inline constexpr std::size_t kFlowModFixedSize = kHeaderSize + kMatchSize + 24;  // 72
inline constexpr std::size_t kFlowRemovedSize = kHeaderSize + kMatchSize + 40;   // 88
inline constexpr std::size_t kPhyPortSize = 48;
inline constexpr std::size_t kPortStatusSize = kHeaderSize + 8 + kPhyPortSize;  // 64
inline constexpr std::size_t kFeaturesReplyFixedSize = kHeaderSize + 24;
inline constexpr std::size_t kStatsHeaderSize = kHeaderSize + 4;  // + type/flags
inline constexpr std::size_t kErrorFixedSize = kHeaderSize + 4;   // + type/code
inline constexpr std::size_t kFlowStatsRequestBodySize = kMatchSize + 4;
inline constexpr std::size_t kFlowStatsEntrySize = 88;
inline constexpr std::size_t kAggregateStatsReplyBodySize = 24;
inline constexpr std::size_t kPortStatsRequestBodySize = 8;
inline constexpr std::size_t kPortStatsEntrySize = 104;
// Vendor flow-sample body: vendor_id(4) + subtype(2) + pad(2) + sample_seq(4)
// + src_ip(4) + dst_ip(4) + src_port(2) + dst_port(2) + in_port(2) +
// frame_bytes(2) + protocol(1) + pad(3) = 32.
inline constexpr std::size_t kVendorFlowSampleSize = kHeaderSize + 32;  // 40

// Bytes added around each OpenFlow message on the control path: the channel
// runs over TCP/IP/Ethernet, and the paper measures control-path load with
// tcpdump, i.e. including that framing (Ethernet 14 + IPv4 20 + TCP w/
// timestamps 32).
inline constexpr std::size_t kTransportOverhead = 66;

}  // namespace sdnbuf::of

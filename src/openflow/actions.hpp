// OpenFlow 1.0 actions.
//
// The testbed only needs OUTPUT (forward through a port, flood, or send to
// controller) plus the L2 rewrite actions a learning controller may emit;
// an empty action list means drop, as in the specification.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "net/address.hpp"

namespace sdnbuf::of {

// OFPAT_OUTPUT
struct OutputAction {
  std::uint16_t port = 0;
  // Max bytes to send when port == kPortController.
  std::uint16_t max_len = 0;

  bool operator==(const OutputAction&) const = default;
};

// OFPAT_SET_DL_SRC / OFPAT_SET_DL_DST
struct SetDlSrcAction {
  net::MacAddress mac;
  bool operator==(const SetDlSrcAction&) const = default;
};

struct SetDlDstAction {
  net::MacAddress mac;
  bool operator==(const SetDlDstAction&) const = default;
};

using Action = std::variant<OutputAction, SetDlSrcAction, SetDlDstAction>;

using ActionList = std::vector<Action>;

// Encoded length of one action / a list (every modelled action is 8 or 16
// bytes on the wire, as in OF 1.0).
[[nodiscard]] std::size_t encoded_size(const Action& a);
[[nodiscard]] std::size_t encoded_size(const ActionList& actions);

void encode_actions(const ActionList& actions, std::vector<std::uint8_t>& out);

// Decodes exactly `len` bytes of actions; nullopt on malformed input.
[[nodiscard]] std::optional<ActionList> decode_actions(std::span<const std::uint8_t> in,
                                                       std::size_t len);

[[nodiscard]] std::string to_string(const Action& a);
[[nodiscard]] std::string to_string(const ActionList& actions);

// Convenience constructors.
[[nodiscard]] inline ActionList output_to(std::uint16_t port, std::uint16_t max_len = 0) {
  return {OutputAction{port, max_len}};
}
[[nodiscard]] inline ActionList drop() { return {}; }

}  // namespace sdnbuf::of

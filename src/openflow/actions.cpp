#include "openflow/actions.hpp"

#include <sstream>

#include "util/byte_order.hpp"

namespace sdnbuf::of {

using util::get_be16;
using util::put_be16;
using util::put_pad;

namespace {

// OFPAT_* type codes.
constexpr std::uint16_t kTypeOutput = 0;
constexpr std::uint16_t kTypeSetDlSrc = 4;
constexpr std::uint16_t kTypeSetDlDst = 5;

constexpr std::size_t kOutputSize = 8;
constexpr std::size_t kSetDlSize = 16;

}  // namespace

std::size_t encoded_size(const Action& a) {
  return std::holds_alternative<OutputAction>(a) ? kOutputSize : kSetDlSize;
}

std::size_t encoded_size(const ActionList& actions) {
  std::size_t n = 0;
  for (const auto& a : actions) n += encoded_size(a);
  return n;
}

void encode_actions(const ActionList& actions, std::vector<std::uint8_t>& out) {
  for (const auto& a : actions) {
    if (const auto* o = std::get_if<OutputAction>(&a)) {
      put_be16(out, kTypeOutput);
      put_be16(out, kOutputSize);
      put_be16(out, o->port);
      put_be16(out, o->max_len);
    } else if (const auto* s = std::get_if<SetDlSrcAction>(&a)) {
      put_be16(out, kTypeSetDlSrc);
      put_be16(out, kSetDlSize);
      out.insert(out.end(), s->mac.octets().begin(), s->mac.octets().end());
      put_pad(out, 6);
    } else if (const auto* d = std::get_if<SetDlDstAction>(&a)) {
      put_be16(out, kTypeSetDlDst);
      put_be16(out, kSetDlSize);
      out.insert(out.end(), d->mac.octets().begin(), d->mac.octets().end());
      put_pad(out, 6);
    }
  }
}

std::optional<ActionList> decode_actions(std::span<const std::uint8_t> in, std::size_t len) {
  if (in.size() < len) return std::nullopt;
  ActionList actions;
  std::size_t off = 0;
  while (off < len) {
    if (len - off < 4) return std::nullopt;
    const std::uint16_t type = get_be16(in, off);
    const std::uint16_t alen = get_be16(in, off + 2);
    if (alen < 4 || off + alen > len) return std::nullopt;
    switch (type) {
      case kTypeOutput: {
        if (alen != kOutputSize) return std::nullopt;
        OutputAction o;
        o.port = get_be16(in, off + 4);
        o.max_len = get_be16(in, off + 6);
        actions.emplace_back(o);
        break;
      }
      case kTypeSetDlSrc:
      case kTypeSetDlDst: {
        if (alen != kSetDlSize) return std::nullopt;
        std::array<std::uint8_t, 6> mac{};
        std::copy(in.begin() + static_cast<std::ptrdiff_t>(off + 4),
                  in.begin() + static_cast<std::ptrdiff_t>(off + 10), mac.begin());
        if (type == kTypeSetDlSrc) {
          actions.emplace_back(SetDlSrcAction{net::MacAddress{mac}});
        } else {
          actions.emplace_back(SetDlDstAction{net::MacAddress{mac}});
        }
        break;
      }
      default:
        return std::nullopt;  // unknown action type
    }
    off += alen;
  }
  return actions;
}

std::string to_string(const Action& a) {
  std::ostringstream os;
  if (const auto* o = std::get_if<OutputAction>(&a)) {
    os << "output:" << o->port;
  } else if (const auto* s = std::get_if<SetDlSrcAction>(&a)) {
    os << "set_dl_src:" << s->mac.to_string();
  } else if (const auto* d = std::get_if<SetDlDstAction>(&a)) {
    os << "set_dl_dst:" << d->mac.to_string();
  }
  return os.str();
}

std::string to_string(const ActionList& actions) {
  if (actions.empty()) return "drop";
  std::string out;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i) out += ',';
    out += to_string(actions[i]);
  }
  return out;
}

}  // namespace sdnbuf::of

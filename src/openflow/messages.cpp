#include "openflow/messages.hpp"

#include <algorithm>

#include "util/byte_order.hpp"
#include "util/check.hpp"

namespace sdnbuf::of {

using util::get_be16;
using util::get_be32;
using util::get_be64;
using util::put_be16;
using util::put_be32;
using util::put_be64;
using util::put_pad;

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "hello";
    case MsgType::Error: return "error";
    case MsgType::EchoRequest: return "echo_request";
    case MsgType::EchoReply: return "echo_reply";
    case MsgType::Vendor: return "vendor";
    case MsgType::FeaturesRequest: return "features_request";
    case MsgType::FeaturesReply: return "features_reply";
    case MsgType::PacketIn: return "packet_in";
    case MsgType::FlowRemoved: return "flow_removed";
    case MsgType::PortStatus: return "port_status";
    case MsgType::PacketOut: return "packet_out";
    case MsgType::FlowMod: return "flow_mod";
    case MsgType::StatsRequest: return "stats_request";
    case MsgType::StatsReply: return "stats_reply";
    case MsgType::BarrierRequest: return "barrier_request";
    case MsgType::BarrierReply: return "barrier_reply";
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::Loss: return "loss";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Outage: return "outage";
  }
  return "?";
}

MsgType message_type(const OfMessage& msg) {
  struct Visitor {
    MsgType operator()(const Hello&) const { return MsgType::Hello; }
    MsgType operator()(const Error&) const { return MsgType::Error; }
    MsgType operator()(const EchoRequest&) const { return MsgType::EchoRequest; }
    MsgType operator()(const EchoReply&) const { return MsgType::EchoReply; }
    MsgType operator()(const FeaturesRequest&) const { return MsgType::FeaturesRequest; }
    MsgType operator()(const FeaturesReply&) const { return MsgType::FeaturesReply; }
    MsgType operator()(const PacketIn&) const { return MsgType::PacketIn; }
    MsgType operator()(const PacketOut&) const { return MsgType::PacketOut; }
    MsgType operator()(const FlowMod&) const { return MsgType::FlowMod; }
    MsgType operator()(const FlowRemoved&) const { return MsgType::FlowRemoved; }
    MsgType operator()(const PortStatus&) const { return MsgType::PortStatus; }
    MsgType operator()(const FlowStatsRequest&) const { return MsgType::StatsRequest; }
    MsgType operator()(const FlowStatsReply&) const { return MsgType::StatsReply; }
    MsgType operator()(const AggregateStatsRequest&) const { return MsgType::StatsRequest; }
    MsgType operator()(const AggregateStatsReply&) const { return MsgType::StatsReply; }
    MsgType operator()(const PortStatsRequest&) const { return MsgType::StatsRequest; }
    MsgType operator()(const PortStatsReply&) const { return MsgType::StatsReply; }
    MsgType operator()(const BarrierRequest&) const { return MsgType::BarrierRequest; }
    MsgType operator()(const BarrierReply&) const { return MsgType::BarrierReply; }
    MsgType operator()(const FlowSample&) const { return MsgType::Vendor; }
  };
  return std::visit(Visitor{}, msg);
}

std::uint32_t message_xid(const OfMessage& msg) {
  return std::visit([](const auto& m) { return m.xid; }, msg);
}

std::size_t encoded_size(const OfMessage& msg) {
  struct Visitor {
    std::size_t operator()(const Hello&) const { return kHeaderSize; }
    std::size_t operator()(const Error& m) const { return kErrorFixedSize + m.data.size(); }
    std::size_t operator()(const EchoRequest&) const { return kHeaderSize; }
    std::size_t operator()(const EchoReply&) const { return kHeaderSize; }
    std::size_t operator()(const FeaturesRequest&) const { return kHeaderSize; }
    std::size_t operator()(const FeaturesReply& m) const {
      return kFeaturesReplyFixedSize + m.ports.size() * kPhyPortSize;
    }
    std::size_t operator()(const PacketIn& m) const { return kPacketInFixedSize + m.data.size(); }
    std::size_t operator()(const PacketOut& m) const {
      return kPacketOutFixedSize + encoded_size(m.actions) + m.data.size();
    }
    std::size_t operator()(const FlowMod& m) const {
      return kFlowModFixedSize + encoded_size(m.actions);
    }
    std::size_t operator()(const FlowRemoved&) const { return kFlowRemovedSize; }
    std::size_t operator()(const PortStatus&) const { return kPortStatusSize; }
    std::size_t operator()(const FlowStatsRequest&) const {
      return kStatsHeaderSize + kFlowStatsRequestBodySize;
    }
    std::size_t operator()(const FlowStatsReply& m) const {
      return kStatsHeaderSize + m.flows.size() * kFlowStatsEntrySize;
    }
    std::size_t operator()(const AggregateStatsRequest&) const {
      return kStatsHeaderSize + kFlowStatsRequestBodySize;
    }
    std::size_t operator()(const AggregateStatsReply&) const {
      return kStatsHeaderSize + kAggregateStatsReplyBodySize;
    }
    std::size_t operator()(const PortStatsRequest&) const {
      return kStatsHeaderSize + kPortStatsRequestBodySize;
    }
    std::size_t operator()(const PortStatsReply& m) const {
      return kStatsHeaderSize + m.ports.size() * kPortStatsEntrySize;
    }
    std::size_t operator()(const BarrierRequest&) const { return kHeaderSize; }
    std::size_t operator()(const BarrierReply&) const { return kHeaderSize; }
    std::size_t operator()(const FlowSample&) const { return kVendorFlowSampleSize; }
  };
  return std::visit(Visitor{}, msg);
}

namespace {

void put_header(std::vector<std::uint8_t>& out, MsgType type, std::size_t total_len,
                std::uint32_t xid) {
  SDNBUF_CHECK_MSG(total_len <= 0xffff, "OpenFlow message too long for 16-bit length");
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_be16(out, static_cast<std::uint16_t>(total_len));
  put_be32(out, xid);
}

void encode_port(std::vector<std::uint8_t>& out, const PortDesc& p) {
  put_be16(out, p.port_no);
  out.insert(out.end(), p.hw_addr.octets().begin(), p.hw_addr.octets().end());
  char name[16] = {};
  std::copy_n(p.name.data(), std::min<std::size_t>(p.name.size(), 15), name);
  out.insert(out.end(), name, name + 16);
  // config, advertised, supported are not modelled; store the current speed
  // in the "curr" word, the link-down bit in "state", and zero the rest.
  put_be32(out, 0);
  put_be32(out, p.link_down ? kPortStateLinkDown : 0);
  put_be32(out, p.curr_speed_mbps);
  put_be32(out, 0);
  put_be32(out, 0);
  put_be32(out, 0);
}

std::optional<PortDesc> decode_port(std::span<const std::uint8_t> in) {
  if (in.size() < kPhyPortSize) return std::nullopt;
  PortDesc p;
  p.port_no = get_be16(in, 0);
  std::array<std::uint8_t, 6> mac{};
  std::copy(in.begin() + 2, in.begin() + 8, mac.begin());
  p.hw_addr = net::MacAddress{mac};
  const auto* name_begin = reinterpret_cast<const char*>(in.data() + 8);
  const auto* name_end = std::find(name_begin, name_begin + 16, '\0');
  p.name.assign(name_begin, name_end);
  p.link_down = (get_be32(in, 28) & kPortStateLinkDown) != 0;
  p.curr_speed_mbps = get_be32(in, 32);
  return p;
}

}  // namespace

void encode_message_into(const OfMessage& msg, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(encoded_size(msg));
  const MsgType type = message_type(msg);
  const std::uint32_t xid = message_xid(msg);
  const std::size_t total = encoded_size(msg);

  struct Visitor {
    std::vector<std::uint8_t>& out;
    void operator()(const Hello&) const {}
    void operator()(const Error& m) const {
      put_be16(out, static_cast<std::uint16_t>(m.type));
      put_be16(out, static_cast<std::uint16_t>(m.code));
      out.insert(out.end(), m.data.begin(), m.data.end());
    }
    void operator()(const EchoRequest&) const {}
    void operator()(const EchoReply&) const {}
    void operator()(const FeaturesRequest&) const {}
    void operator()(const FeaturesReply& m) const {
      put_be64(out, m.datapath_id);
      put_be32(out, m.n_buffers);
      out.push_back(m.n_tables);
      put_pad(out, 3);
      put_be32(out, 0);  // capabilities
      put_be32(out, 0);  // actions bitmap
      for (const auto& p : m.ports) encode_port(out, p);
    }
    void operator()(const PacketIn& m) const {
      put_be32(out, m.buffer_id);
      put_be16(out, m.total_len);
      put_be16(out, m.in_port);
      out.push_back(static_cast<std::uint8_t>(m.reason));
      put_pad(out, 1);
      out.insert(out.end(), m.data.begin(), m.data.end());
    }
    void operator()(const PacketOut& m) const {
      put_be32(out, m.buffer_id);
      put_be16(out, m.in_port);
      put_be16(out, static_cast<std::uint16_t>(encoded_size(m.actions)));
      encode_actions(m.actions, out);
      out.insert(out.end(), m.data.begin(), m.data.end());
    }
    void operator()(const FlowMod& m) const {
      m.match.encode(out);
      put_be64(out, m.cookie);
      put_be16(out, static_cast<std::uint16_t>(m.command));
      put_be16(out, m.idle_timeout_s);
      put_be16(out, m.hard_timeout_s);
      put_be16(out, m.priority);
      put_be32(out, m.buffer_id);
      put_be16(out, m.out_port);
      put_be16(out, m.flags);
      encode_actions(m.actions, out);
    }
    void operator()(const FlowRemoved& m) const {
      m.match.encode(out);
      put_be64(out, m.cookie);
      put_be16(out, m.priority);
      out.push_back(static_cast<std::uint8_t>(m.reason));
      put_pad(out, 1);
      put_be32(out, m.duration_sec);
      put_be32(out, m.duration_nsec);
      put_be16(out, m.idle_timeout_s);
      put_pad(out, 2);
      put_be64(out, m.packet_count);
      put_be64(out, m.byte_count);
    }
    void operator()(const PortStatus& m) const {
      out.push_back(static_cast<std::uint8_t>(m.reason));
      put_pad(out, 7);
      encode_port(out, m.desc);
    }
    void operator()(const FlowStatsRequest& m) const {
      put_be16(out, static_cast<std::uint16_t>(StatsType::Flow));
      put_be16(out, 0);  // flags
      m.match.encode(out);
      out.push_back(0xff);  // table_id: all tables
      put_pad(out, 1);
      put_be16(out, m.out_port);
    }
    void operator()(const FlowStatsReply& m) const {
      put_be16(out, static_cast<std::uint16_t>(StatsType::Flow));
      put_be16(out, 0);
      for (const auto& f : m.flows) {
        put_be16(out, static_cast<std::uint16_t>(kFlowStatsEntrySize));
        out.push_back(0);  // table_id
        put_pad(out, 1);
        f.match.encode(out);
        put_be32(out, f.duration_sec);
        put_be32(out, f.duration_nsec);
        put_be16(out, f.priority);
        put_be16(out, f.idle_timeout_s);
        put_be16(out, f.hard_timeout_s);
        put_pad(out, 6);
        put_be64(out, f.cookie);
        put_be64(out, f.packet_count);
        put_be64(out, f.byte_count);
      }
    }
    void operator()(const AggregateStatsRequest& m) const {
      put_be16(out, static_cast<std::uint16_t>(StatsType::Aggregate));
      put_be16(out, 0);
      m.match.encode(out);
      out.push_back(0xff);
      put_pad(out, 1);
      put_be16(out, m.out_port);
    }
    void operator()(const AggregateStatsReply& m) const {
      put_be16(out, static_cast<std::uint16_t>(StatsType::Aggregate));
      put_be16(out, 0);
      put_be64(out, m.packet_count);
      put_be64(out, m.byte_count);
      put_be32(out, m.flow_count);
      put_pad(out, 4);
    }
    void operator()(const PortStatsRequest& m) const {
      put_be16(out, static_cast<std::uint16_t>(StatsType::Port));
      put_be16(out, 0);
      put_be16(out, m.port_no);
      put_pad(out, 6);
    }
    void operator()(const PortStatsReply& m) const {
      put_be16(out, static_cast<std::uint16_t>(StatsType::Port));
      put_be16(out, 0);
      for (const auto& p : m.ports) {
        put_be16(out, p.port_no);
        put_pad(out, 6);
        put_be64(out, p.rx_packets);
        put_be64(out, p.tx_packets);
        put_be64(out, p.rx_bytes);
        put_be64(out, p.tx_bytes);
        put_be64(out, p.rx_dropped);
        put_be64(out, p.tx_dropped);
        put_pad(out, 48);  // rx/tx errors, frame/over/crc errors, collisions
      }
    }
    void operator()(const BarrierRequest&) const {}
    void operator()(const BarrierReply&) const {}
    void operator()(const FlowSample& m) const {
      put_be32(out, kSdnbufVendorId);
      put_be16(out, kFlowSampleSubtype);
      put_pad(out, 2);
      put_be32(out, m.sample_seq);
      put_be32(out, m.src_ip);
      put_be32(out, m.dst_ip);
      put_be16(out, m.src_port);
      put_be16(out, m.dst_port);
      put_be16(out, m.in_port);
      put_be16(out, m.frame_bytes);
      out.push_back(m.protocol);
      put_pad(out, 3);
    }
  };

  put_header(out, type, total, xid);
  std::visit(Visitor{out}, msg);
  SDNBUF_CHECK_MSG(out.size() == total, "encoded size mismatch");
}

std::vector<std::uint8_t> encode_message(const OfMessage& msg) {
  std::vector<std::uint8_t> out;
  encode_message_into(msg, out);
  return out;
}

std::optional<OfMessage> decode_message(std::span<const std::uint8_t> in) {
  if (in.size() < kHeaderSize) return std::nullopt;
  if (in[0] != kVersion) return std::nullopt;
  const auto type = static_cast<MsgType>(in[1]);
  const std::uint16_t length = get_be16(in, 2);
  const std::uint32_t xid = get_be32(in, 4);
  if (length < kHeaderSize || in.size() < length) return std::nullopt;
  const auto body = in.subspan(kHeaderSize, length - kHeaderSize);

  switch (type) {
    case MsgType::Hello:
      return Hello{xid};
    case MsgType::Error: {
      if (body.size() < 4) return std::nullopt;
      Error m;
      m.xid = xid;
      m.type = static_cast<ErrorType>(get_be16(body, 0));
      m.code = static_cast<ErrorCode>(get_be16(body, 2));
      m.data.assign(body.begin() + 4, body.end());
      return m;
    }
    case MsgType::EchoRequest:
      return EchoRequest{xid};
    case MsgType::EchoReply:
      return EchoReply{xid};
    case MsgType::FeaturesRequest:
      return FeaturesRequest{xid};
    case MsgType::FeaturesReply: {
      if (body.size() < kFeaturesReplyFixedSize - kHeaderSize) return std::nullopt;
      FeaturesReply m;
      m.xid = xid;
      m.datapath_id = get_be64(body, 0);
      m.n_buffers = get_be32(body, 8);
      m.n_tables = body[12];
      // datapath_id(8) + n_buffers(4) + n_tables(1) + pad(3) + caps(4) + actions(4)
      std::size_t off = 24;
      while (off + kPhyPortSize <= body.size()) {
        auto p = decode_port(body.subspan(off));
        if (!p) return std::nullopt;
        m.ports.push_back(std::move(*p));
        off += kPhyPortSize;
      }
      if (off != body.size()) return std::nullopt;
      return m;
    }
    case MsgType::PacketIn: {
      if (body.size() < kPacketInFixedSize - kHeaderSize) return std::nullopt;
      PacketIn m;
      m.xid = xid;
      m.buffer_id = get_be32(body, 0);
      m.total_len = get_be16(body, 4);
      m.in_port = get_be16(body, 6);
      m.reason = static_cast<PacketInReason>(body[8]);
      m.data.assign(body.begin() + 10, body.end());
      return m;
    }
    case MsgType::PacketOut: {
      if (body.size() < kPacketOutFixedSize - kHeaderSize) return std::nullopt;
      PacketOut m;
      m.xid = xid;
      m.buffer_id = get_be32(body, 0);
      m.in_port = get_be16(body, 4);
      const std::uint16_t actions_len = get_be16(body, 6);
      if (body.size() < 8u + actions_len) return std::nullopt;
      auto actions = decode_actions(body.subspan(8), actions_len);
      if (!actions) return std::nullopt;
      m.actions = std::move(*actions);
      m.data.assign(body.begin() + 8 + actions_len, body.end());
      return m;
    }
    case MsgType::FlowMod: {
      if (body.size() < kFlowModFixedSize - kHeaderSize) return std::nullopt;
      auto match = Match::decode(body);
      if (!match) return std::nullopt;
      FlowMod m;
      m.xid = xid;
      m.match = *match;
      std::size_t off = kMatchSize;
      m.cookie = get_be64(body, off);
      m.command = static_cast<FlowModCommand>(get_be16(body, off + 8));
      m.idle_timeout_s = get_be16(body, off + 10);
      m.hard_timeout_s = get_be16(body, off + 12);
      m.priority = get_be16(body, off + 14);
      m.buffer_id = get_be32(body, off + 16);
      m.out_port = get_be16(body, off + 20);
      m.flags = get_be16(body, off + 22);
      auto actions = decode_actions(body.subspan(off + 24), body.size() - off - 24);
      if (!actions) return std::nullopt;
      m.actions = std::move(*actions);
      return m;
    }
    case MsgType::FlowRemoved: {
      if (body.size() < kFlowRemovedSize - kHeaderSize) return std::nullopt;
      auto match = Match::decode(body);
      if (!match) return std::nullopt;
      FlowRemoved m;
      m.xid = xid;
      m.match = *match;
      std::size_t off = kMatchSize;
      m.cookie = get_be64(body, off);
      m.priority = get_be16(body, off + 8);
      m.reason = static_cast<FlowRemovedReason>(body[off + 10]);
      m.duration_sec = get_be32(body, off + 12);
      m.duration_nsec = get_be32(body, off + 16);
      m.idle_timeout_s = get_be16(body, off + 20);
      m.packet_count = get_be64(body, off + 24);
      m.byte_count = get_be64(body, off + 32);
      return m;
    }
    case MsgType::PortStatus: {
      if (body.size() < kPortStatusSize - kHeaderSize) return std::nullopt;
      PortStatus m;
      m.xid = xid;
      m.reason = static_cast<PortStatusReason>(body[0]);
      auto p = decode_port(body.subspan(8));
      if (!p) return std::nullopt;
      m.desc = std::move(*p);
      return m;
    }
    case MsgType::StatsRequest: {
      if (body.size() < 4) return std::nullopt;
      const auto stats_type = static_cast<StatsType>(get_be16(body, 0));
      const auto sbody = body.subspan(4);
      switch (stats_type) {
        case StatsType::Flow:
        case StatsType::Aggregate: {
          if (sbody.size() != kFlowStatsRequestBodySize) return std::nullopt;
          auto match = Match::decode(sbody);
          if (!match) return std::nullopt;
          const std::uint16_t out_port = get_be16(sbody, kMatchSize + 2);
          if (stats_type == StatsType::Flow) return FlowStatsRequest{xid, *match, out_port};
          return AggregateStatsRequest{xid, *match, out_port};
        }
        case StatsType::Port: {
          if (sbody.size() != kPortStatsRequestBodySize) return std::nullopt;
          return PortStatsRequest{xid, get_be16(sbody, 0)};
        }
      }
      return std::nullopt;
    }
    case MsgType::StatsReply: {
      if (body.size() < 4) return std::nullopt;
      const auto stats_type = static_cast<StatsType>(get_be16(body, 0));
      const auto sbody = body.subspan(4);
      switch (stats_type) {
        case StatsType::Flow: {
          if (sbody.size() % kFlowStatsEntrySize != 0) return std::nullopt;
          FlowStatsReply m;
          m.xid = xid;
          for (std::size_t off = 0; off < sbody.size(); off += kFlowStatsEntrySize) {
            if (get_be16(sbody, off) != kFlowStatsEntrySize) return std::nullopt;
            auto match = Match::decode(sbody.subspan(off + 4));
            if (!match) return std::nullopt;
            FlowStatsEntry e;
            e.match = *match;
            std::size_t p = off + 4 + kMatchSize;
            e.duration_sec = get_be32(sbody, p);
            e.duration_nsec = get_be32(sbody, p + 4);
            e.priority = get_be16(sbody, p + 8);
            e.idle_timeout_s = get_be16(sbody, p + 10);
            e.hard_timeout_s = get_be16(sbody, p + 12);
            e.cookie = get_be64(sbody, p + 20);
            e.packet_count = get_be64(sbody, p + 28);
            e.byte_count = get_be64(sbody, p + 36);
            m.flows.push_back(std::move(e));
          }
          return m;
        }
        case StatsType::Aggregate: {
          if (sbody.size() != kAggregateStatsReplyBodySize) return std::nullopt;
          AggregateStatsReply m;
          m.xid = xid;
          m.packet_count = get_be64(sbody, 0);
          m.byte_count = get_be64(sbody, 8);
          m.flow_count = get_be32(sbody, 16);
          return m;
        }
        case StatsType::Port: {
          if (sbody.size() % kPortStatsEntrySize != 0) return std::nullopt;
          PortStatsReply m;
          m.xid = xid;
          for (std::size_t off = 0; off < sbody.size(); off += kPortStatsEntrySize) {
            PortStatsEntry e;
            e.port_no = get_be16(sbody, off);
            e.rx_packets = get_be64(sbody, off + 8);
            e.tx_packets = get_be64(sbody, off + 16);
            e.rx_bytes = get_be64(sbody, off + 24);
            e.tx_bytes = get_be64(sbody, off + 32);
            e.rx_dropped = get_be64(sbody, off + 40);
            e.tx_dropped = get_be64(sbody, off + 48);
            m.ports.push_back(e);
          }
          return m;
        }
      }
      return std::nullopt;
    }
    case MsgType::BarrierRequest:
      return BarrierRequest{xid};
    case MsgType::BarrierReply:
      return BarrierReply{xid};
    case MsgType::Vendor: {
      if (body.size() != kVendorFlowSampleSize - kHeaderSize) return std::nullopt;
      if (get_be32(body, 0) != kSdnbufVendorId) return std::nullopt;
      if (get_be16(body, 4) != kFlowSampleSubtype) return std::nullopt;
      FlowSample m;
      m.xid = xid;
      m.sample_seq = get_be32(body, 8);
      m.src_ip = get_be32(body, 12);
      m.dst_ip = get_be32(body, 16);
      m.src_port = get_be16(body, 20);
      m.dst_port = get_be16(body, 22);
      m.in_port = get_be16(body, 24);
      m.frame_bytes = get_be16(body, 26);
      m.protocol = body[28];
      return m;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace sdnbuf::of

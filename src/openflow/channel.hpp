// The switch<->controller control channel.
//
// Models the TCP connection between an OpenFlow agent and the controller:
// messages are encoded to their real wire bytes, framed with the transport
// overhead tcpdump would see, transmitted over a `net::Link` per direction
// (FIFO, bandwidth-limited), and decoded at the receiver. Per-type message
// counters feed the experiment reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/link.hpp"
#include "obs/instruments.hpp"
#include "openflow/messages.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sdnbuf::of {

// Counts messages and payload bytes by type for one direction.
class MessageCounters {
 public:
  void record(MsgType type, std::size_t wire_bytes);

  [[nodiscard]] std::uint64_t count(MsgType type) const;
  [[nodiscard]] std::uint64_t bytes(MsgType type) const;
  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  void reset();

 private:
  static constexpr std::size_t kSlots = 20;
  static_assert(kSlots >= kMsgTypeSlots, "MessageCounters must cover every MsgType");
  std::array<std::uint64_t, kSlots> counts_{};
  std::array<std::uint64_t, kSlots> bytes_{};
};

// A scheduled window (absolute simulation times) during which the control
// connection is down: nothing sent in either direction reaches the wire.
struct OutageWindow {
  sim::SimTime start;
  sim::SimTime end;  // exclusive
};

// Seeded channel fault injection. All probabilities are per message; loss
// and duplication are drawn independently per direction so asymmetric
// control paths (congested uplink, clean downlink) are expressible. The
// profile is inert by default — a Channel without one is byte-for-byte the
// reliable transport it always was.
struct FaultProfile {
  double loss_to_controller = 0.0;
  double loss_to_switch = 0.0;
  double duplicate_to_controller = 0.0;
  double duplicate_to_switch = 0.0;
  // Extra per-delivery jitter, uniform in [0, max_extra_delay]. Delivery
  // order within a direction is preserved (TCP does not reorder).
  sim::SimTime max_extra_delay;
  // Must be sorted by start and non-overlapping.
  std::vector<OutageWindow> outages;

  [[nodiscard]] bool any() const {
    return loss_to_controller > 0.0 || loss_to_switch > 0.0 || duplicate_to_controller > 0.0 ||
           duplicate_to_switch > 0.0 || max_extra_delay > sim::SimTime::zero() ||
           !outages.empty();
  }
  [[nodiscard]] bool in_outage(sim::SimTime now) const {
    for (const auto& w : outages) {
      if (now < w.start) return false;
      if (now < w.end) return true;
    }
    return false;
  }
};

struct ChannelFaultCounters {
  std::uint64_t lost_to_controller = 0;
  std::uint64_t lost_to_switch = 0;
  std::uint64_t duplicated_to_controller = 0;
  std::uint64_t duplicated_to_switch = 0;
  std::uint64_t outage_dropped_to_controller = 0;
  std::uint64_t outage_dropped_to_switch = 0;

  [[nodiscard]] std::uint64_t total_lost() const { return lost_to_controller + lost_to_switch; }
  [[nodiscard]] std::uint64_t total_duplicated() const {
    return duplicated_to_controller + duplicated_to_switch;
  }
  [[nodiscard]] std::uint64_t total_outage_dropped() const {
    return outage_dropped_to_controller + outage_dropped_to_switch;
  }
};

class Channel {
 public:
  // Delivered message plus its size on the wire (OpenFlow bytes + transport
  // framing), as a tcpdump capture would report it.
  using Handler = std::function<void(const OfMessage&, std::size_t wire_bytes)>;

  // `to_controller` carries switch->controller traffic; `to_switch` the
  // reverse direction. Links are owned by the caller (the testbed).
  Channel(sim::Simulator& sim, net::Link& to_controller, net::Link& to_switch);

  // Sharded fabrics: the switch endpoint and the controller endpoint live on
  // different shards, each with its own simulator. Send-side bookkeeping
  // (outage check, taps, counters) reads the sender's clock; delivery-side
  // work (decode, jitter floors) the receiver's. Both default to the ctor's
  // simulator, so single-sim channels are untouched.
  void set_shard_sims(sim::Simulator& switch_sim, sim::Simulator& controller_sim) {
    switch_sim_ = &switch_sim;
    controller_sim_ = &controller_sim;
  }

  void set_controller_handler(Handler h) { controller_handler_ = std::move(h); }
  void set_switch_handler(Handler h) { switch_handler_ = std::move(h); }

  // Sends and returns the wire size of the message (including framing).
  std::size_t send_from_switch(const OfMessage& msg);
  std::size_t send_from_controller(const OfMessage& msg);

  [[nodiscard]] const MessageCounters& to_controller_counters() const {
    return to_controller_counters_;
  }
  [[nodiscard]] const MessageCounters& to_switch_counters() const { return to_switch_counters_; }

  [[nodiscard]] net::Link& to_controller_link() { return to_controller_; }
  [[nodiscard]] net::Link& to_switch_link() { return to_switch_; }

  // Observation tap for captures: invoked synchronously at send time with
  // the direction (true = switch->controller), the message, its wire size,
  // and the send timestamp.
  using TapFn = std::function<void(bool to_controller, const OfMessage& msg,
                                   std::size_t wire_bytes, sim::SimTime when)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  // Second, independent tap slot for the invariant-checking layer, so a
  // verification run can observe the channel while a ChannelCapture holds
  // the capture tap.
  void set_verify_tap(TapFn tap) { verify_tap_ = std::move(tap); }

  // Installs (or replaces) the fault profile; draws come from a dedicated
  // Rng stream so fault decisions never perturb the switch/controller cost
  // jitter streams. Outage windows are absolute simulation times.
  void set_fault_profile(FaultProfile profile, std::uint64_t seed);
  [[nodiscard]] const FaultProfile& fault_profile() const { return fault_profile_; }
  [[nodiscard]] const ChannelFaultCounters& fault_counters() const { return fault_counters_; }
  // False while an outage window covers `now`. Queried by the switch's
  // liveness machinery, hence the switch-side clock.
  [[nodiscard]] bool connection_up() const {
    return !fault_profile_.in_outage(switch_sim_->now());
  }

  // Fault observation tap: fires once per injected fault, at send time for
  // outage drops and duplicates, at send time of the doomed copy for losses.
  // For Duplicate it fires *before* the duplicate's capture/verify tap
  // records, so an observer can widen its accounting first.
  using FaultTapFn = std::function<void(bool to_controller, const OfMessage& msg, FaultKind kind,
                                        sim::SimTime when)>;
  void set_fault_tap(FaultTapFn tap) { fault_tap_ = std::move(tap); }

  // Metrics instruments (default-null bundle = disabled).
  void set_instruments(const obs::ChannelInstruments& instruments) { instr_ = instruments; }

  void reset_counters() {
    to_controller_counters_.reset();
    to_switch_counters_.reset();
    fault_counters_ = ChannelFaultCounters{};
  }

  // Allocates a fresh transaction id. The two endpoints draw from disjoint
  // spaces (switch odd, controller even) so id assignment is deterministic
  // even when the endpoints live on different shards and their windows
  // execute concurrently — a shared counter would hand out ids in whatever
  // order the threads happened to interleave.
  [[nodiscard]] std::uint32_t next_xid() {
    const std::uint32_t xid = next_switch_xid_;
    next_switch_xid_ += 2;
    return xid;
  }
  [[nodiscard]] std::uint32_t next_controller_xid() {
    const std::uint32_t xid = next_controller_xid_;
    next_controller_xid_ += 2;
    return xid;
  }

 private:
  std::size_t send(net::Link& link, MessageCounters& counters, Handler& handler,
                   const OfMessage& msg, bool to_controller);
  // One wire transmission (original or duplicate): loss draw, delay draw,
  // link transit, in-order delivery to the handler.
  void transmit(net::Link& link, Handler& handler, std::vector<std::uint8_t> wire,
                std::size_t wire_bytes, const OfMessage& msg, bool to_controller);

  // Scratch-buffer pools for wire encodings, one per endpoint so a sharded
  // channel's two sides never touch the same free list concurrently. A
  // buffer is checked out at send time by the sender, rides inside the
  // delivery closure while in flight, and lands in the *receiver's* pool
  // (capacity intact) once decoded — steady-state encode/deliver performs no
  // allocation, buffers just migrate between the endpoint pools. Bounded so
  // a burst cannot pin memory forever.
  [[nodiscard]] std::vector<std::uint8_t> acquire_buffer(bool controller_side);
  void release_buffer(bool controller_side, std::vector<std::uint8_t>&& buffer);

  // The sender's / receiver's simulator for a message heading in the given
  // direction (identical unless set_shard_sims split them).
  [[nodiscard]] sim::Simulator& sender_sim(bool to_controller) {
    return to_controller ? *switch_sim_ : *controller_sim_;
  }
  [[nodiscard]] sim::Simulator& receiver_sim(bool to_controller) {
    return to_controller ? *controller_sim_ : *switch_sim_;
  }

  sim::Simulator& sim_;
  sim::Simulator* switch_sim_;
  sim::Simulator* controller_sim_;
  net::Link& to_controller_;
  net::Link& to_switch_;
  Handler controller_handler_;
  Handler switch_handler_;
  MessageCounters to_controller_counters_;
  MessageCounters to_switch_counters_;
  TapFn tap_;
  TapFn verify_tap_;
  FaultTapFn fault_tap_;
  obs::ChannelInstruments instr_;
  FaultProfile fault_profile_;
  ChannelFaultCounters fault_counters_;
  std::optional<util::Rng> fault_rng_;
  // Per-direction delivery-time floor ([0] to_switch, [1] to_controller):
  // extra-delay jitter must not reorder messages within a direction. Each
  // floor is only touched by its receiving endpoint's shard.
  sim::SimTime deliver_floor_[2];
  std::uint32_t next_switch_xid_ = 1;      // odd ids
  std::uint32_t next_controller_xid_ = 2;  // even ids
  // [0] switch-side pool, [1] controller-side pool.
  std::vector<std::vector<std::uint8_t>> buffer_pools_[2];
};

}  // namespace sdnbuf::of

// The switch<->controller control channel.
//
// Models the TCP connection between an OpenFlow agent and the controller:
// messages are encoded to their real wire bytes, framed with the transport
// overhead tcpdump would see, transmitted over a `net::Link` per direction
// (FIFO, bandwidth-limited), and decoded at the receiver. Per-type message
// counters feed the experiment reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "net/link.hpp"
#include "openflow/messages.hpp"
#include "sim/simulator.hpp"

namespace sdnbuf::of {

// Counts messages and payload bytes by type for one direction.
class MessageCounters {
 public:
  void record(MsgType type, std::size_t wire_bytes);

  [[nodiscard]] std::uint64_t count(MsgType type) const;
  [[nodiscard]] std::uint64_t bytes(MsgType type) const;
  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  void reset();

 private:
  static constexpr std::size_t kSlots = 20;
  std::array<std::uint64_t, kSlots> counts_{};
  std::array<std::uint64_t, kSlots> bytes_{};
};

class Channel {
 public:
  // Delivered message plus its size on the wire (OpenFlow bytes + transport
  // framing), as a tcpdump capture would report it.
  using Handler = std::function<void(const OfMessage&, std::size_t wire_bytes)>;

  // `to_controller` carries switch->controller traffic; `to_switch` the
  // reverse direction. Links are owned by the caller (the testbed).
  Channel(sim::Simulator& sim, net::Link& to_controller, net::Link& to_switch);

  void set_controller_handler(Handler h) { controller_handler_ = std::move(h); }
  void set_switch_handler(Handler h) { switch_handler_ = std::move(h); }

  // Sends and returns the wire size of the message (including framing).
  std::size_t send_from_switch(const OfMessage& msg);
  std::size_t send_from_controller(const OfMessage& msg);

  [[nodiscard]] const MessageCounters& to_controller_counters() const {
    return to_controller_counters_;
  }
  [[nodiscard]] const MessageCounters& to_switch_counters() const { return to_switch_counters_; }

  [[nodiscard]] net::Link& to_controller_link() { return to_controller_; }
  [[nodiscard]] net::Link& to_switch_link() { return to_switch_; }

  // Observation tap for captures: invoked synchronously at send time with
  // the direction (true = switch->controller), the message, its wire size,
  // and the send timestamp.
  using TapFn = std::function<void(bool to_controller, const OfMessage& msg,
                                   std::size_t wire_bytes, sim::SimTime when)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  // Second, independent tap slot for the invariant-checking layer, so a
  // verification run can observe the channel while a ChannelCapture holds
  // the capture tap.
  void set_verify_tap(TapFn tap) { verify_tap_ = std::move(tap); }

  void reset_counters() {
    to_controller_counters_.reset();
    to_switch_counters_.reset();
  }

  // Allocates a fresh transaction id (shared by both endpoints for
  // simplicity; uniqueness is what matters).
  [[nodiscard]] std::uint32_t next_xid() { return next_xid_++; }

 private:
  std::size_t send(net::Link& link, MessageCounters& counters, Handler& handler,
                   const OfMessage& msg, bool to_controller);

  sim::Simulator& sim_;
  net::Link& to_controller_;
  net::Link& to_switch_;
  Handler controller_handler_;
  Handler switch_handler_;
  MessageCounters to_controller_counters_;
  MessageCounters to_switch_counters_;
  TapFn tap_;
  TapFn verify_tap_;
  std::uint32_t next_xid_ = 1;
};

}  // namespace sdnbuf::of

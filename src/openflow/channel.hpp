// The switch<->controller control channel.
//
// Models the TCP connection between an OpenFlow agent and the controller:
// messages are encoded to their real wire bytes, framed with the transport
// overhead tcpdump would see, transmitted over a `net::Link` per direction
// (FIFO, bandwidth-limited), and decoded at the receiver. Per-type message
// counters feed the experiment reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/link.hpp"
#include "obs/instruments.hpp"
#include "openflow/messages.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sdnbuf::of {

// Counts messages and payload bytes by type for one direction.
class MessageCounters {
 public:
  void record(MsgType type, std::size_t wire_bytes);

  [[nodiscard]] std::uint64_t count(MsgType type) const;
  [[nodiscard]] std::uint64_t bytes(MsgType type) const;
  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  void reset();

 private:
  static constexpr std::size_t kSlots = 20;
  static_assert(kSlots >= kMsgTypeSlots, "MessageCounters must cover every MsgType");
  std::array<std::uint64_t, kSlots> counts_{};
  std::array<std::uint64_t, kSlots> bytes_{};
};

// A scheduled window (absolute simulation times) during which the control
// connection is down: nothing sent in either direction reaches the wire.
struct OutageWindow {
  sim::SimTime start;
  sim::SimTime end;  // exclusive
};

// Seeded channel fault injection. All probabilities are per message; loss
// and duplication are drawn independently per direction so asymmetric
// control paths (congested uplink, clean downlink) are expressible. The
// profile is inert by default — a Channel without one is byte-for-byte the
// reliable transport it always was.
struct FaultProfile {
  double loss_to_controller = 0.0;
  double loss_to_switch = 0.0;
  double duplicate_to_controller = 0.0;
  double duplicate_to_switch = 0.0;
  // Extra per-delivery jitter, uniform in [0, max_extra_delay]. Delivery
  // order within a direction is preserved (TCP does not reorder).
  sim::SimTime max_extra_delay;
  // Must be sorted by start and non-overlapping.
  std::vector<OutageWindow> outages;

  [[nodiscard]] bool any() const {
    return loss_to_controller > 0.0 || loss_to_switch > 0.0 || duplicate_to_controller > 0.0 ||
           duplicate_to_switch > 0.0 || max_extra_delay > sim::SimTime::zero() ||
           !outages.empty();
  }
  [[nodiscard]] bool in_outage(sim::SimTime now) const {
    for (const auto& w : outages) {
      if (now < w.start) return false;
      if (now < w.end) return true;
    }
    return false;
  }
};

struct ChannelFaultCounters {
  std::uint64_t lost_to_controller = 0;
  std::uint64_t lost_to_switch = 0;
  std::uint64_t duplicated_to_controller = 0;
  std::uint64_t duplicated_to_switch = 0;
  std::uint64_t outage_dropped_to_controller = 0;
  std::uint64_t outage_dropped_to_switch = 0;

  [[nodiscard]] std::uint64_t total_lost() const { return lost_to_controller + lost_to_switch; }
  [[nodiscard]] std::uint64_t total_duplicated() const {
    return duplicated_to_controller + duplicated_to_switch;
  }
  [[nodiscard]] std::uint64_t total_outage_dropped() const {
    return outage_dropped_to_controller + outage_dropped_to_switch;
  }
};

class Channel {
 public:
  // Delivered message plus its size on the wire (OpenFlow bytes + transport
  // framing), as a tcpdump capture would report it.
  using Handler = std::function<void(const OfMessage&, std::size_t wire_bytes)>;

  // `to_controller` carries switch->controller traffic; `to_switch` the
  // reverse direction. Links are owned by the caller (the testbed).
  Channel(sim::Simulator& sim, net::Link& to_controller, net::Link& to_switch);

  void set_controller_handler(Handler h) { controller_handler_ = std::move(h); }
  void set_switch_handler(Handler h) { switch_handler_ = std::move(h); }

  // Sends and returns the wire size of the message (including framing).
  std::size_t send_from_switch(const OfMessage& msg);
  std::size_t send_from_controller(const OfMessage& msg);

  [[nodiscard]] const MessageCounters& to_controller_counters() const {
    return to_controller_counters_;
  }
  [[nodiscard]] const MessageCounters& to_switch_counters() const { return to_switch_counters_; }

  [[nodiscard]] net::Link& to_controller_link() { return to_controller_; }
  [[nodiscard]] net::Link& to_switch_link() { return to_switch_; }

  // Observation tap for captures: invoked synchronously at send time with
  // the direction (true = switch->controller), the message, its wire size,
  // and the send timestamp.
  using TapFn = std::function<void(bool to_controller, const OfMessage& msg,
                                   std::size_t wire_bytes, sim::SimTime when)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  // Second, independent tap slot for the invariant-checking layer, so a
  // verification run can observe the channel while a ChannelCapture holds
  // the capture tap.
  void set_verify_tap(TapFn tap) { verify_tap_ = std::move(tap); }

  // Installs (or replaces) the fault profile; draws come from a dedicated
  // Rng stream so fault decisions never perturb the switch/controller cost
  // jitter streams. Outage windows are absolute simulation times.
  void set_fault_profile(FaultProfile profile, std::uint64_t seed);
  [[nodiscard]] const FaultProfile& fault_profile() const { return fault_profile_; }
  [[nodiscard]] const ChannelFaultCounters& fault_counters() const { return fault_counters_; }
  // False while an outage window covers `now`.
  [[nodiscard]] bool connection_up() const { return !fault_profile_.in_outage(sim_.now()); }

  // Fault observation tap: fires once per injected fault, at send time for
  // outage drops and duplicates, at send time of the doomed copy for losses.
  // For Duplicate it fires *before* the duplicate's capture/verify tap
  // records, so an observer can widen its accounting first.
  using FaultTapFn = std::function<void(bool to_controller, const OfMessage& msg, FaultKind kind,
                                        sim::SimTime when)>;
  void set_fault_tap(FaultTapFn tap) { fault_tap_ = std::move(tap); }

  // Metrics instruments (default-null bundle = disabled).
  void set_instruments(const obs::ChannelInstruments& instruments) { instr_ = instruments; }

  void reset_counters() {
    to_controller_counters_.reset();
    to_switch_counters_.reset();
    fault_counters_ = ChannelFaultCounters{};
  }

  // Allocates a fresh transaction id (shared by both endpoints for
  // simplicity; uniqueness is what matters).
  [[nodiscard]] std::uint32_t next_xid() { return next_xid_++; }

 private:
  std::size_t send(net::Link& link, MessageCounters& counters, Handler& handler,
                   const OfMessage& msg, bool to_controller);
  // One wire transmission (original or duplicate): loss draw, delay draw,
  // link transit, in-order delivery to the handler.
  void transmit(net::Link& link, Handler& handler, std::vector<std::uint8_t> wire,
                std::size_t wire_bytes, const OfMessage& msg, bool to_controller);

  // Scratch-buffer pool for wire encodings. A buffer is checked out at send
  // time, rides inside the delivery closure while in flight, and returns to
  // the pool (capacity intact) once decoded — so steady-state encode/deliver
  // performs no allocation. Bounded so a burst cannot pin memory forever.
  [[nodiscard]] std::vector<std::uint8_t> acquire_buffer();
  void release_buffer(std::vector<std::uint8_t>&& buffer);

  sim::Simulator& sim_;
  net::Link& to_controller_;
  net::Link& to_switch_;
  Handler controller_handler_;
  Handler switch_handler_;
  MessageCounters to_controller_counters_;
  MessageCounters to_switch_counters_;
  TapFn tap_;
  TapFn verify_tap_;
  FaultTapFn fault_tap_;
  obs::ChannelInstruments instr_;
  FaultProfile fault_profile_;
  ChannelFaultCounters fault_counters_;
  std::optional<util::Rng> fault_rng_;
  // Per-direction delivery-time floor ([0] to_switch, [1] to_controller):
  // extra-delay jitter must not reorder messages within a direction.
  sim::SimTime deliver_floor_[2];
  std::uint32_t next_xid_ = 1;
  std::vector<std::vector<std::uint8_t>> buffer_pool_;
};

}  // namespace sdnbuf::of

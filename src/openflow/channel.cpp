#include "openflow/channel.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace sdnbuf::of {

void MessageCounters::record(MsgType type, std::size_t wire_bytes) {
  const auto slot = static_cast<std::size_t>(type);
  SDNBUF_CHECK(slot < kSlots);
  ++counts_[slot];
  bytes_[slot] += wire_bytes;
}

std::uint64_t MessageCounters::count(MsgType type) const {
  return counts_[static_cast<std::size_t>(type)];
}

std::uint64_t MessageCounters::bytes(MsgType type) const {
  return bytes_[static_cast<std::size_t>(type)];
}

std::uint64_t MessageCounters::total_count() const {
  std::uint64_t n = 0;
  for (auto c : counts_) n += c;
  return n;
}

std::uint64_t MessageCounters::total_bytes() const {
  std::uint64_t n = 0;
  for (auto b : bytes_) n += b;
  return n;
}

void MessageCounters::reset() {
  counts_.fill(0);
  bytes_.fill(0);
}

Channel::Channel(sim::Simulator& sim, net::Link& to_controller, net::Link& to_switch)
    : sim_(sim),
      switch_sim_(&sim),
      controller_sim_(&sim),
      to_controller_(to_controller),
      to_switch_(to_switch) {}

void Channel::set_fault_profile(FaultProfile profile, std::uint64_t seed) {
  for (std::size_t i = 0; i < profile.outages.size(); ++i) {
    SDNBUF_CHECK_MSG(profile.outages[i].start <= profile.outages[i].end,
                     "outage window ends before it starts");
    if (i > 0) {
      SDNBUF_CHECK_MSG(profile.outages[i - 1].end <= profile.outages[i].start,
                       "outage windows must be sorted and non-overlapping");
    }
  }
  fault_profile_ = std::move(profile);
  fault_rng_.emplace(seed);
  deliver_floor_[0] = deliver_floor_[1] = sim::SimTime::zero();
}

std::vector<std::uint8_t> Channel::acquire_buffer(bool controller_side) {
  auto& pool = buffer_pools_[controller_side ? 1 : 0];
  if (pool.empty()) return {};
  std::vector<std::uint8_t> buffer = std::move(pool.back());
  pool.pop_back();
  return buffer;
}

void Channel::release_buffer(bool controller_side, std::vector<std::uint8_t>&& buffer) {
  static constexpr std::size_t kMaxPooledBuffers = 64;
  auto& pool = buffer_pools_[controller_side ? 1 : 0];
  if (pool.size() >= kMaxPooledBuffers) return;  // let it free
  buffer.clear();
  pool.push_back(std::move(buffer));
}

void Channel::transmit(net::Link& link, Handler& handler, std::vector<std::uint8_t> wire,
                       std::size_t wire_bytes, const OfMessage& msg, bool to_controller) {
  const double loss_p =
      to_controller ? fault_profile_.loss_to_controller : fault_profile_.loss_to_switch;
  if (fault_rng_ && loss_p > 0.0 && fault_rng_->next_double() < loss_p) {
    auto& lost =
        to_controller ? fault_counters_.lost_to_controller : fault_counters_.lost_to_switch;
    ++lost;
    if (fault_tap_) fault_tap_(to_controller, msg, FaultKind::Loss, sender_sim(to_controller).now());
    // The doomed copy still occupies the link: loss happens in transit, not
    // at the sender.
    release_buffer(!to_controller, std::move(wire));
    link.send(wire_bytes, []() {});
    return;
  }
  const bool jittered = fault_rng_ && fault_profile_.max_extra_delay > sim::SimTime::zero();
  sim::SimTime extra;
  if (jittered) {
    extra = sim::SimTime::nanoseconds(static_cast<std::int64_t>(fault_rng_->next_below(
        static_cast<std::uint64_t>(fault_profile_.max_extra_delay.ns()) + 1)));
  }
  // The delivery closure runs at the receiving endpoint (on its shard, when
  // the channel is split): decode, buffer release and the jitter floor all
  // belong to the receiver.
  link.send(wire_bytes,
            [this, &handler, wire = std::move(wire), wire_bytes, extra, jittered,
             to_controller]() mutable {
    auto decoded = decode_message(wire);
    SDNBUF_CHECK_MSG(decoded.has_value(), "control channel delivered an undecodable message");
    release_buffer(to_controller, std::move(wire));
    if (!jittered) {
      if (handler) handler(*decoded, wire_bytes);
      return;
    }
    sim::Simulator& rsim = receiver_sim(to_controller);
    // Jitter must not reorder a direction's messages (TCP delivers in
    // order): never deliver before an earlier message's delivery time.
    sim::SimTime when = rsim.now() + extra;
    sim::SimTime& floor = deliver_floor_[to_controller ? 1 : 0];
    if (when < floor) when = floor;
    floor = when;
    if (when <= rsim.now()) {
      if (handler) handler(*decoded, wire_bytes);
    } else {
      rsim.schedule(when - rsim.now(), [&handler, delivered = *decoded, wire_bytes]() {
        sim::ScopedProfileTag tag{"channel"};
        if (handler) handler(delivered, wire_bytes);
      });
    }
  });
}

std::size_t Channel::send(net::Link& link, MessageCounters& counters, Handler& handler,
                          const OfMessage& msg, bool to_controller) {
  // Encode through the real codec; the decoded copy is delivered to the
  // receiver, so any asymmetry between encode and decode would surface
  // immediately in every simulation. The wire bytes live in a pooled
  // scratch buffer that returns to the pool after decode.
  sim::Simulator& ssim = sender_sim(to_controller);
  auto wire = acquire_buffer(!to_controller);
  encode_message_into(msg, wire);
  const std::size_t wire_bytes = wire.size() + kTransportOverhead;
  if (fault_profile_.in_outage(ssim.now())) {
    // Connection down: the message never reaches the wire, so it appears in
    // no counter or capture — exactly what tcpdump would (not) see.
    auto& dropped = to_controller ? fault_counters_.outage_dropped_to_controller
                                  : fault_counters_.outage_dropped_to_switch;
    ++dropped;
    if (fault_tap_) fault_tap_(to_controller, msg, FaultKind::Outage, ssim.now());
    release_buffer(!to_controller, std::move(wire));
    return wire_bytes;
  }
  const double dup_p =
      to_controller ? fault_profile_.duplicate_to_controller : fault_profile_.duplicate_to_switch;
  const bool duplicate = fault_rng_ && dup_p > 0.0 && fault_rng_->next_double() < dup_p;
  counters.record(message_type(msg), wire_bytes);
  if (obs::Histogram* h =
          to_controller ? instr_.wire_bytes_to_controller : instr_.wire_bytes_to_switch;
      h != nullptr) {
    h->record(static_cast<double>(wire_bytes));
  }
  if (tap_) tap_(to_controller, msg, wire_bytes, ssim.now());
  if (verify_tap_) verify_tap_(to_controller, msg, wire_bytes, ssim.now());
  std::vector<std::uint8_t> copy;
  if (duplicate) {
    copy = acquire_buffer(!to_controller);
    copy.assign(wire.begin(), wire.end());
  }
  transmit(link, handler, std::move(wire), wire_bytes, msg, to_controller);
  if (duplicate) {
    auto& duped = to_controller ? fault_counters_.duplicated_to_controller
                                : fault_counters_.duplicated_to_switch;
    ++duped;
    // Fault tap first, then the duplicate's capture/verify records, so an
    // observer widens its accounting before seeing the second crossing.
    if (fault_tap_) fault_tap_(to_controller, msg, FaultKind::Duplicate, ssim.now());
    counters.record(message_type(msg), wire_bytes);
    if (tap_) tap_(to_controller, msg, wire_bytes, ssim.now());
    if (verify_tap_) verify_tap_(to_controller, msg, wire_bytes, ssim.now());
    transmit(link, handler, std::move(copy), wire_bytes, msg, to_controller);
  }
  return wire_bytes;
}

std::size_t Channel::send_from_switch(const OfMessage& msg) {
  SDNBUF_TRACE("channel", "switch -> controller: " << msg_type_name(message_type(msg)));
  return send(to_controller_, to_controller_counters_, controller_handler_, msg,
              /*to_controller=*/true);
}

std::size_t Channel::send_from_controller(const OfMessage& msg) {
  SDNBUF_TRACE("channel", "controller -> switch: " << msg_type_name(message_type(msg)));
  return send(to_switch_, to_switch_counters_, switch_handler_, msg,
              /*to_controller=*/false);
}

}  // namespace sdnbuf::of

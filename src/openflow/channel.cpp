#include "openflow/channel.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace sdnbuf::of {

void MessageCounters::record(MsgType type, std::size_t wire_bytes) {
  const auto slot = static_cast<std::size_t>(type);
  SDNBUF_CHECK(slot < kSlots);
  ++counts_[slot];
  bytes_[slot] += wire_bytes;
}

std::uint64_t MessageCounters::count(MsgType type) const {
  return counts_[static_cast<std::size_t>(type)];
}

std::uint64_t MessageCounters::bytes(MsgType type) const {
  return bytes_[static_cast<std::size_t>(type)];
}

std::uint64_t MessageCounters::total_count() const {
  std::uint64_t n = 0;
  for (auto c : counts_) n += c;
  return n;
}

std::uint64_t MessageCounters::total_bytes() const {
  std::uint64_t n = 0;
  for (auto b : bytes_) n += b;
  return n;
}

void MessageCounters::reset() {
  counts_.fill(0);
  bytes_.fill(0);
}

Channel::Channel(sim::Simulator& sim, net::Link& to_controller, net::Link& to_switch)
    : sim_(sim), to_controller_(to_controller), to_switch_(to_switch) {}

std::size_t Channel::send(net::Link& link, MessageCounters& counters, Handler& handler,
                          const OfMessage& msg, bool to_controller) {
  // Encode through the real codec; the decoded copy is delivered to the
  // receiver, so any asymmetry between encode and decode would surface
  // immediately in every simulation.
  auto wire = encode_message(msg);
  const std::size_t wire_bytes = wire.size() + kTransportOverhead;
  counters.record(message_type(msg), wire_bytes);
  if (tap_) tap_(to_controller, msg, wire_bytes, sim_.now());
  if (verify_tap_) verify_tap_(to_controller, msg, wire_bytes, sim_.now());
  link.send(wire_bytes, [&handler, wire = std::move(wire), wire_bytes]() {
    auto decoded = decode_message(wire);
    SDNBUF_CHECK_MSG(decoded.has_value(), "control channel delivered an undecodable message");
    if (handler) handler(*decoded, wire_bytes);
  });
  return wire_bytes;
}

std::size_t Channel::send_from_switch(const OfMessage& msg) {
  SDNBUF_TRACE("channel", "switch -> controller: " << msg_type_name(message_type(msg)));
  return send(to_controller_, to_controller_counters_, controller_handler_, msg,
              /*to_controller=*/true);
}

std::size_t Channel::send_from_controller(const OfMessage& msg) {
  SDNBUF_TRACE("channel", "controller -> switch: " << msg_type_name(message_type(msg)));
  return send(to_switch_, to_switch_counters_, switch_handler_, msg,
              /*to_controller=*/false);
}

}  // namespace sdnbuf::of

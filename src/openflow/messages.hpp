// OpenFlow 1.0 messages with byte-accurate encode/decode.
//
// Every message the testbed exchanges is represented here and round-trips
// through the real wire format, so control-path byte counts are exact. The
// catalogue covers the handshake (hello / features / echo), the reactive
// path the paper studies (packet_in / packet_out / flow_mod), flow_removed
// (table evictions and timeouts) and barriers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/constants.hpp"
#include "openflow/match.hpp"

namespace sdnbuf::of {

struct Hello {
  std::uint32_t xid = 0;
  bool operator==(const Hello&) const = default;
};

struct EchoRequest {
  std::uint32_t xid = 0;
  bool operator==(const EchoRequest&) const = default;
};

struct EchoReply {
  std::uint32_t xid = 0;
  bool operator==(const EchoReply&) const = default;
};

struct FeaturesRequest {
  std::uint32_t xid = 0;
  bool operator==(const FeaturesRequest&) const = default;
};

struct PortDesc {
  std::uint16_t port_no = 0;
  net::MacAddress hw_addr;
  std::string name;  // <= 15 chars on the wire
  std::uint32_t curr_speed_mbps = 100;
  bool link_down = false;  // OFPPS_LINK_DOWN bit of the phy-port state word

  bool operator==(const PortDesc&) const = default;
};

struct FeaturesReply {
  std::uint32_t xid = 0;
  std::uint64_t datapath_id = 0;
  std::uint32_t n_buffers = 0;  // buffer units the switch advertises
  std::uint8_t n_tables = 1;
  std::vector<PortDesc> ports;

  bool operator==(const FeaturesReply&) const = default;
};

struct PacketIn {
  std::uint32_t xid = 0;
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t total_len = 0;  // full frame length of the miss-match packet
  std::uint16_t in_port = 0;
  PacketInReason reason = PacketInReason::NoMatch;
  // First `miss_send_len` bytes when buffered; the entire frame otherwise.
  std::vector<std::uint8_t> data;

  bool operator==(const PacketIn&) const = default;
};

struct PacketOut {
  std::uint32_t xid = 0;
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t in_port = kPortNone;
  ActionList actions;
  // Full frame when buffer_id == kNoBuffer; empty otherwise.
  std::vector<std::uint8_t> data;

  bool operator==(const PacketOut&) const = default;
};

struct FlowMod {
  std::uint32_t xid = 0;
  Match match;
  std::uint64_t cookie = 0;
  FlowModCommand command = FlowModCommand::Add;
  std::uint16_t idle_timeout_s = 0;  // 0 = no timeout
  std::uint16_t hard_timeout_s = 0;
  std::uint16_t priority = 0x8000;
  // When valid, the switch applies `actions` to the buffered packet too.
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t out_port = kPortNone;  // filter for delete commands
  std::uint16_t flags = 0;
  ActionList actions;

  bool operator==(const FlowMod&) const = default;
};

struct FlowRemoved {
  std::uint32_t xid = 0;
  Match match;
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  FlowRemovedReason reason = FlowRemovedReason::IdleTimeout;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t idle_timeout_s = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;

  bool operator==(const FlowRemoved&) const = default;
};

// OFPT_PORT_STATUS: asynchronous switch -> controller notification that a
// port's state changed. The data-plane fault plane sends Delete when a link
// goes down (or a peer switch crashes) and Add when it comes back; the
// controller reacts by invalidating rules routed over the dead link and
// recomputing paths (DESIGN.md §13).
struct PortStatus {
  std::uint32_t xid = 0;
  PortStatusReason reason = PortStatusReason::Modify;
  PortDesc desc;

  bool operator==(const PortStatus&) const = default;
};

// --- statistics (OFPT_STATS_REQUEST/REPLY, OF 1.0 subset) ---
//
// The reproduction's controller can poll these like Floodlight's monitoring
// modules do; the ablation benches use them to measure the control-path cost
// of statistics collection alongside the buffer mechanisms.

struct FlowStatsRequest {
  std::uint32_t xid = 0;
  Match match;  // selects entries by subsumption (wildcard_all = every rule)
  std::uint16_t out_port = kPortNone;

  bool operator==(const FlowStatsRequest&) const = default;
};

struct FlowStatsEntry {
  Match match;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t priority = 0;
  std::uint16_t idle_timeout_s = 0;
  std::uint16_t hard_timeout_s = 0;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;

  bool operator==(const FlowStatsEntry&) const = default;
};

struct FlowStatsReply {
  std::uint32_t xid = 0;
  std::vector<FlowStatsEntry> flows;

  bool operator==(const FlowStatsReply&) const = default;
};

struct AggregateStatsRequest {
  std::uint32_t xid = 0;
  Match match;
  std::uint16_t out_port = kPortNone;

  bool operator==(const AggregateStatsRequest&) const = default;
};

struct AggregateStatsReply {
  std::uint32_t xid = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint32_t flow_count = 0;

  bool operator==(const AggregateStatsReply&) const = default;
};

struct PortStatsRequest {
  std::uint32_t xid = 0;
  std::uint16_t port_no = kPortNone;  // kPortNone = all ports

  bool operator==(const PortStatsRequest&) const = default;
};

struct PortStatsEntry {
  std::uint16_t port_no = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;

  bool operator==(const PortStatsEntry&) const = default;
};

struct PortStatsReply {
  std::uint32_t xid = 0;
  std::vector<PortStatsEntry> ports;

  bool operator==(const PortStatsReply&) const = default;
};

// OFPT_ERROR: sent by the switch when a request cannot be honoured (e.g. a
// packet_out naming an unknown/expired buffer_id). `data` carries the first
// bytes of the offending message, per the specification.
struct Error {
  std::uint32_t xid = 0;
  ErrorType type = ErrorType::BadRequest;
  ErrorCode code = ErrorCode::BadType;
  std::vector<std::uint8_t> data;

  bool operator==(const Error&) const = default;
};

// OFPT_VENDOR (experimenter) flow sample: one NetFlow-style sampled packet
// record emitted by a switch whose telemetry_sample_period is non-zero and
// consumed by the controller's FlowMonitor (DESIGN.md §15). Carries the
// 5-tuple plus arrival context; `sample_seq` is the switch's running sample
// counter, so the controller can detect channel loss of sample records.
struct FlowSample {
  std::uint32_t xid = 0;
  std::uint32_t sample_seq = 0;
  std::uint32_t src_ip = 0;  // raw nw_src/nw_dst, matching ofp_match encoding
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t in_port = 0;
  std::uint16_t frame_bytes = 0;  // frame size of the sampled packet
  std::uint8_t protocol = 0;      // IP protocol of the sampled packet

  bool operator==(const FlowSample&) const = default;
};

struct BarrierRequest {
  std::uint32_t xid = 0;
  bool operator==(const BarrierRequest&) const = default;
};

struct BarrierReply {
  std::uint32_t xid = 0;
  bool operator==(const BarrierReply&) const = default;
};

using OfMessage =
    std::variant<Hello, Error, EchoRequest, EchoReply, FeaturesRequest, FeaturesReply, PacketIn,
                 PacketOut, FlowMod, FlowRemoved, PortStatus, FlowStatsRequest, FlowStatsReply,
                 AggregateStatsRequest, AggregateStatsReply, PortStatsRequest, PortStatsReply,
                 BarrierRequest, BarrierReply, FlowSample>;

[[nodiscard]] MsgType message_type(const OfMessage& msg);
[[nodiscard]] std::uint32_t message_xid(const OfMessage& msg);

// Encodes with a correct ofp_header (version/type/length/xid).
[[nodiscard]] std::vector<std::uint8_t> encode_message(const OfMessage& msg);

// Encodes into `out` (cleared first), reusing its capacity — the hot-path
// variant the control channel feeds with per-channel scratch buffers so
// steady-state encoding performs no allocation.
void encode_message_into(const OfMessage& msg, std::vector<std::uint8_t>& out);

// Full encoded size without materializing the buffer.
[[nodiscard]] std::size_t encoded_size(const OfMessage& msg);

// Decodes one message; nullopt on truncation, bad version, or unknown type.
[[nodiscard]] std::optional<OfMessage> decode_message(std::span<const std::uint8_t> in);

}  // namespace sdnbuf::of

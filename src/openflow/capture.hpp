// Control-channel capture — the explicit tcpdump stand-in.
//
// The paper measures its control path by running tcpdump on the controller
// interface. `ChannelCapture` records every message crossing a `Channel`
// with timestamp, direction, type, xid and wire size, offers per-direction
// byte/count accounting, and renders a dissected, human-readable trace
// (`dump`) — the workflow a developer uses to debug a buffer mechanism.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>

#include "openflow/channel.hpp"
#include "sim/time.hpp"

namespace sdnbuf::of {

enum class Direction { ToController, ToSwitch };

[[nodiscard]] const char* direction_name(Direction d);

// One-line protocol dissection of a message ("packet_in buffer_id=7
// in_port=1 total_len=1000 data=128B reason=no_match", ...).
[[nodiscard]] std::string dissect(const OfMessage& msg);

struct CaptureRecord {
  sim::SimTime timestamp;
  Direction direction = Direction::ToController;
  MsgType type = MsgType::Hello;
  std::uint32_t xid = 0;
  std::size_t wire_bytes = 0;
  std::string summary;
};

class ChannelCapture {
 public:
  // Keeps at most `max_records` most recent records (older ones roll off;
  // counters keep running).
  explicit ChannelCapture(std::size_t max_records = 65536) : max_records_(max_records) {}

  // Starts observing `channel`. Only one capture per channel (later attach
  // replaces the earlier tap).
  void attach(Channel& channel);

  [[nodiscard]] const std::deque<CaptureRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t total_messages(Direction d) const;
  [[nodiscard]] std::uint64_t total_bytes(Direction d) const;
  [[nodiscard]] std::uint64_t dropped_records() const { return dropped_records_; }

  // Renders "time dir type xid bytes summary" lines. `type_filter` empty =
  // everything; otherwise only that message type.
  void dump(std::ostream& out, const std::string& type_filter = "") const;

  void clear();

 private:
  void record(Direction direction, const OfMessage& msg, std::size_t wire_bytes,
              sim::SimTime now);

  std::size_t max_records_;
  std::deque<CaptureRecord> records_;
  std::uint64_t to_controller_messages_ = 0;
  std::uint64_t to_switch_messages_ = 0;
  std::uint64_t to_controller_bytes_ = 0;
  std::uint64_t to_switch_bytes_ = 0;
  std::uint64_t dropped_records_ = 0;
};

}  // namespace sdnbuf::of

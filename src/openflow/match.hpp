// OpenFlow 1.0 ofp_match: 12-tuple match with per-field wildcards and
// CIDR-style wildcarding of IPv4 source/destination.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace sdnbuf::of {

// OFPFW_* wildcard bits.
inline constexpr std::uint32_t kWildcardInPort = 1u << 0;
inline constexpr std::uint32_t kWildcardDlVlan = 1u << 1;
inline constexpr std::uint32_t kWildcardDlSrc = 1u << 2;
inline constexpr std::uint32_t kWildcardDlDst = 1u << 3;
inline constexpr std::uint32_t kWildcardDlType = 1u << 4;
inline constexpr std::uint32_t kWildcardNwProto = 1u << 5;
inline constexpr std::uint32_t kWildcardTpSrc = 1u << 6;
inline constexpr std::uint32_t kWildcardTpDst = 1u << 7;
inline constexpr int kWildcardNwSrcShift = 8;   // 6 bits: # of low IP bits ignored
inline constexpr int kWildcardNwDstShift = 14;  // 6 bits
inline constexpr std::uint32_t kWildcardNwSrcMask = 0x3fu << kWildcardNwSrcShift;
inline constexpr std::uint32_t kWildcardNwDstMask = 0x3fu << kWildcardNwDstShift;
inline constexpr std::uint32_t kWildcardDlVlanPcp = 1u << 20;
inline constexpr std::uint32_t kWildcardNwTos = 1u << 21;
inline constexpr std::uint32_t kWildcardAll = 0x3fffff;

struct Match {
  std::uint32_t wildcards = kWildcardAll;
  std::uint16_t in_port = 0;
  net::MacAddress dl_src;
  net::MacAddress dl_dst;
  std::uint16_t dl_vlan = 0xffff;  // OFP_VLAN_NONE
  std::uint8_t dl_vlan_pcp = 0;
  std::uint16_t dl_type = 0;
  std::uint8_t nw_tos = 0;
  std::uint8_t nw_proto = 0;
  net::Ipv4Address nw_src;
  net::Ipv4Address nw_dst;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  bool operator==(const Match&) const = default;

  // A match-everything entry (all fields wildcarded).
  [[nodiscard]] static Match wildcard_all() { return Match{}; }

  // Exact match on every field of `p` as received on `in_port` (what a
  // reactive controller installs per micro-flow).
  [[nodiscard]] static Match exact_from(const net::Packet& p, std::uint16_t in_port);

  // Does `p`, received on `port`, satisfy this match?
  [[nodiscard]] bool matches(const net::Packet& p, std::uint16_t port) const;

  // Is `other` a subset of this match (every packet matching `other` also
  // matches this)? Used for non-strict flow_mod delete.
  [[nodiscard]] bool subsumes(const Match& other) const;

  // # of low bits of nw_src/nw_dst that are ignored (0 = exact, >=32 = any).
  [[nodiscard]] int nw_src_ignored_bits() const;
  [[nodiscard]] int nw_dst_ignored_bits() const;
  void set_nw_src_ignored_bits(int bits);
  void set_nw_dst_ignored_bits(int bits);

  void encode(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static std::optional<Match> decode(std::span<const std::uint8_t> in);

  [[nodiscard]] std::string to_string() const;
};

}  // namespace sdnbuf::of

#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer, runs the
# full test suite, and gives the scenario fuzzer a fixed-seed budget. This is
# the acceptance gate for the invariant-checking layer: every fuzzed scenario
# runs all three buffer mechanisms with the invariant registry attached, so a
# clean exit means no memory error, no UB, and no invariant violation.
#
# A second build with ThreadSanitizer then runs the concurrency tests (the
# thread pool, the parallel-sweep determinism contract, and the sharded
# engine's threaded windows), gating the parallel machinery on data-race
# freedom.
#
# Usage: scripts/sanitize_check.sh [build_dir] [fuzz_runs] [fuzz_seed]
set -euo pipefail

BUILD_DIR="${1:-build-asan}"
FUZZ_RUNS="${2:-50}"
FUZZ_SEED="${3:-1}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSDNBUF_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Model-validation pass, explicitly: the analytical oracle (src/model) does
# heavy floating-point work (Erlang recurrences, fixed-point iteration,
# pow/exp on mixture moments) where UB — overflow in the factorial-free
# recurrences, bad casts, division by zero at saturation boundaries — would
# silently corrupt predictions. A clean -L model run under UBSan gates that.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L model

# Observability pass: the obs-overhead stage of bench_simcore runs E1 with
# metrics + tracing + profiler attached, so the whole instrumentation hot
# path (histogram record, span open/close, JSON render, profiler rows) gets
# an ASan/UBSan run. Timings are meaningless under sanitizers; only the
# clean exit matters, hence --no-sweep.
"$BUILD_DIR/bench/bench_simcore" --quick --no-sweep --out /dev/null

"$BUILD_DIR/tests/fuzz_scenarios" --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED"
# Second pass with channel faults forced on: every scenario exercises the
# loss/duplication/outage code paths under the sanitizers.
"$BUILD_DIR/tests/fuzz_scenarios" --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" --force-faults
# Third pass with the fabric cross-check forced on: every scenario also runs
# a small multi-switch fabric (topology routing, ECMP, per-switch invariant
# registries) under the sanitizers.
"$BUILD_DIR/tests/fuzz_scenarios" --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" --force-fabric
# Fourth pass with data-plane link faults forced on: every fabric runs under
# seeded flap schedules, exercising send-time loss, port_status handling,
# route repair and the fate policies under the sanitizers.
"$BUILD_DIR/tests/fuzz_scenarios" --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" --force-link-faults
# Fifth pass with the sharded-engine cross-check forced on: every fabric
# mechanism re-runs on the windowed sharded engine and is compared against
# the sequential run, putting the mailbox drain and window machinery under
# ASan/UBSan.
"$BUILD_DIR/tests/fuzz_scenarios" --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" --force-shards
# Sixth pass with the telemetry plane forced on: every scenario attaches the
# fabric observatory (INT stamping, deterministic sampling, fate ledger) and
# cross-checks the drop-attribution ledger against the invariant registry's
# own accounting under the sanitizers.
"$BUILD_DIR/tests/fuzz_scenarios" --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" --force-telemetry
# Seventh pass with the shared-memory MMU forced on: every scenario runs the
# pool-accounting hot path (admission, split release, pool-conservation
# invariant) under a sampled policy/pool/alpha, under the sanitizers.
"$BUILD_DIR/tests/fuzz_scenarios" --runs "$FUZZ_RUNS" --seed "$FUZZ_SEED" --force-mmu
# Data-fault unit/integration suite, explicitly (it is part of ctest above,
# but run it by name so a label change can't silently drop the coverage).
"$BUILD_DIR/tests/test_data_fault"

# ThreadSanitizer pass over the concurrent pieces. TSan cannot be combined
# with ASan, hence the separate build tree.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSDNBUF_SANITIZE=thread
cmake --build "$TSAN_DIR" -j"$(nproc)" --target test_thread_pool test_parallel_sweep test_sharded test_mmu

export TSAN_OPTIONS="halt_on_error=1"
"$TSAN_DIR/tests/test_thread_pool"
"$TSAN_DIR/tests/test_parallel_sweep"
# Sharded engine under TSan: the threaded window workers + barrier gates +
# cross-shard mailboxes are the only other concurrent machinery in the tree,
# and the determinism tests drive them at 1/2/4 worker threads.
"$TSAN_DIR/tests/test_sharded"
# MMU admission runs inside sharded windows, so its accounting gets a TSan
# pass too.
"$TSAN_DIR/tests/test_mmu"

echo "sanitize_check: OK (7 x ${FUZZ_RUNS} scenarios x 3 modes, seed ${FUZZ_SEED}; TSan clean)"

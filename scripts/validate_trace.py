#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the obs::TraceWriter.

Checks (stdlib only, loadable into Perfetto / chrome://tracing unchanged):
  - the file is well-formed JSON with the expected top-level shape
    ({"displayTimeUnit": ..., "meta": {...}, "traceEvents": [...]});
  - every event has the required fields for its phase ("b"/"e" async span
    begin/end, "i" instant);
  - async spans balance: every begin has exactly one end with the same
    (cat, id, name) key, and no end arrives before its begin;
  - span durations are non-negative and timestamps are non-negative;
  - optionally (--metrics FILE) a metrics JSON snapshot file is well-formed,
    its rows match the declared columns, and snapshot times are monotonic;
  - optionally (--min-spans N) at least N completed spans exist, so a CI run
    can assert the trace is not trivially empty.

Exit code 0 on success, 1 on any violation (violations are printed).
"""

import argparse
import collections
import json
import sys


def fail(errors, msg, limit=20):
    errors.append(msg)
    return len(errors) < limit  # stop accumulating after `limit` messages


def validate_trace(path, min_spans):
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)  # raises on malformed JSON -> caught by main

    if not isinstance(doc, dict):
        fail(errors, "top level is not a JSON object")
        return errors, {}
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, 'missing or non-list "traceEvents"')
        return errors, {}
    if not isinstance(doc.get("meta", {}), dict):
        fail(errors, '"meta" is not an object')

    open_spans = {}  # (cat, id, name) -> begin ts
    spans_closed = 0
    durations_by_cat = collections.Counter()
    instants = 0

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            if not fail(errors, f"{where}: not an object"):
                break
            continue
        ph = ev.get("ph")
        if ph not in ("b", "e", "i"):
            if not fail(errors, f"{where}: unexpected phase {ph!r}"):
                break
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            if not fail(errors, f"{where}: bad ts {ts!r}"):
                break
            continue
        name = ev.get("name")
        cat = ev.get("cat")
        if not isinstance(name, str) or not isinstance(cat, str):
            if not fail(errors, f"{where}: missing name/cat"):
                break
            continue

        if ph == "i":
            instants += 1
            continue

        span_id = ev.get("id")
        if not isinstance(span_id, str):
            if not fail(errors, f"{where}: async event without string id"):
                break
            continue
        key = (cat, span_id, name)
        if ph == "b":
            if key in open_spans:
                if not fail(errors, f"{where}: duplicate begin for {key}"):
                    break
                continue
            open_spans[key] = ts
        else:  # "e"
            begin_ts = open_spans.pop(key, None)
            if begin_ts is None:
                if not fail(errors, f"{where}: end without begin for {key}"):
                    break
                continue
            if ts < begin_ts:
                if not fail(errors, f"{where}: negative duration for {key} "
                                    f"({begin_ts} -> {ts})"):
                    break
                continue
            spans_closed += 1
            durations_by_cat[cat] += 1

    for key in sorted(open_spans):
        if not fail(errors, f"unclosed span {key}"):
            break
    if spans_closed < min_spans:
        fail(errors, f"only {spans_closed} completed spans, need >= {min_spans}")

    stats = {
        "events": len(events),
        "spans": spans_closed,
        "instants": instants,
        "by_cat": dict(durations_by_cat),
    }
    return errors, stats


def validate_metrics(path):
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)

    columns = doc.get("columns")
    snapshots = doc.get("snapshots")
    if not isinstance(columns, list) or not columns or columns[0] != "t_ms":
        fail(errors, 'metrics: "columns" must be a list starting with "t_ms"')
        return errors, {}
    if not isinstance(snapshots, list):
        fail(errors, 'metrics: missing "snapshots" list')
        return errors, {}

    prev_t = -1.0
    for i, row in enumerate(snapshots):
        if not isinstance(row, list) or len(row) != len(columns):
            if not fail(errors, f"metrics: snapshots[{i}] has {len(row)} values, "
                                f"expected {len(columns)}"):
                break
            continue
        t = row[0]
        if not isinstance(t, (int, float)) or t < prev_t:
            if not fail(errors, f"metrics: snapshots[{i}] time {t!r} not monotonic"):
                break
            continue
        prev_t = t

    histograms = doc.get("histograms", {})
    if not isinstance(histograms, dict):
        fail(errors, 'metrics: "histograms" is not an object')
    return errors, {"snapshots": len(snapshots), "columns": len(columns),
                    "histograms": len(histograms)}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace JSON file (obs::TraceWriter output)")
    ap.add_argument("--metrics", help="also validate a metrics JSON file")
    ap.add_argument("--min-spans", type=int, default=0,
                    help="require at least N completed spans (default 0)")
    args = ap.parse_args()

    try:
        errors, stats = validate_trace(args.trace, args.min_spans)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"validate_trace: {args.trace}: {exc}", file=sys.stderr)
        return 1
    for msg in errors:
        print(f"validate_trace: {args.trace}: {msg}", file=sys.stderr)
    ok = not errors
    if ok:
        cats = ", ".join(f"{c}={n}" for c, n in sorted(stats["by_cat"].items()))
        print(f"validate_trace: {args.trace}: OK "
              f"({stats['events']} events, {stats['spans']} spans"
              f"{', ' + cats if cats else ''}, {stats['instants']} instants)")

    if args.metrics:
        try:
            merrors, mstats = validate_metrics(args.metrics)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"validate_trace: {args.metrics}: {exc}", file=sys.stderr)
            return 1
        for msg in merrors:
            print(f"validate_trace: {args.metrics}: {msg}", file=sys.stderr)
        if merrors:
            ok = False
        else:
            print(f"validate_trace: {args.metrics}: OK "
                  f"({mstats['snapshots']} snapshots x {mstats['columns']} columns, "
                  f"{mstats['histograms']} histograms)")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the obs::TraceWriter.

Checks (stdlib only, loadable into Perfetto / chrome://tracing unchanged):
  - the file is well-formed JSON with the expected top-level shape
    ({"displayTimeUnit": ..., "meta": {...}, "traceEvents": [...]});
  - every event has the required fields for its phase ("b"/"e" async span
    begin/end, "i" instant);
  - async spans balance: every begin has exactly one end with the same
    (cat, id, name) key, and no end arrives before its begin;
  - span durations are non-negative and timestamps are non-negative;
  - optionally (--metrics FILE) a metrics JSON snapshot file is well-formed,
    its rows match the declared columns, and snapshot times are monotonic;
  - optionally (--min-spans N) at least N completed spans exist, so a CI run
    can assert the trace is not trivially empty;
  - optionally, the telemetry observatory's artifacts (obs::FabricObservatory
    writers): --telemetry-summary checks the ledger identity (injected ==
    delivered + fated + stranded, fated == sum of the fate taxonomy),
    --telemetry-heatmap / --telemetry-fates / --telemetry-paths check the CSV
    schemas and internal consistency (means <= maxes, hop counts match the
    rendered path, fate totals match the summary when both are given).

Exit code 0 on success, 1 on any violation (violations are printed).
"""

import argparse
import collections
import json
import sys


def fail(errors, msg, limit=20):
    errors.append(msg)
    return len(errors) < limit  # stop accumulating after `limit` messages


def validate_trace(path, min_spans):
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)  # raises on malformed JSON -> caught by main

    if not isinstance(doc, dict):
        fail(errors, "top level is not a JSON object")
        return errors, {}
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, 'missing or non-list "traceEvents"')
        return errors, {}
    if not isinstance(doc.get("meta", {}), dict):
        fail(errors, '"meta" is not an object')

    open_spans = {}  # (cat, id, name) -> begin ts
    spans_closed = 0
    durations_by_cat = collections.Counter()
    instants = 0

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            if not fail(errors, f"{where}: not an object"):
                break
            continue
        ph = ev.get("ph")
        if ph not in ("b", "e", "i"):
            if not fail(errors, f"{where}: unexpected phase {ph!r}"):
                break
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            if not fail(errors, f"{where}: bad ts {ts!r}"):
                break
            continue
        name = ev.get("name")
        cat = ev.get("cat")
        if not isinstance(name, str) or not isinstance(cat, str):
            if not fail(errors, f"{where}: missing name/cat"):
                break
            continue

        if ph == "i":
            instants += 1
            continue

        span_id = ev.get("id")
        if not isinstance(span_id, str):
            if not fail(errors, f"{where}: async event without string id"):
                break
            continue
        key = (cat, span_id, name)
        if ph == "b":
            if key in open_spans:
                if not fail(errors, f"{where}: duplicate begin for {key}"):
                    break
                continue
            open_spans[key] = ts
        else:  # "e"
            begin_ts = open_spans.pop(key, None)
            if begin_ts is None:
                if not fail(errors, f"{where}: end without begin for {key}"):
                    break
                continue
            if ts < begin_ts:
                if not fail(errors, f"{where}: negative duration for {key} "
                                    f"({begin_ts} -> {ts})"):
                    break
                continue
            spans_closed += 1
            durations_by_cat[cat] += 1

    for key in sorted(open_spans):
        if not fail(errors, f"unclosed span {key}"):
            break
    if spans_closed < min_spans:
        fail(errors, f"only {spans_closed} completed spans, need >= {min_spans}")

    stats = {
        "events": len(events),
        "spans": spans_closed,
        "instants": instants,
        "by_cat": dict(durations_by_cat),
    }
    return errors, stats


def validate_metrics(path):
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)

    columns = doc.get("columns")
    snapshots = doc.get("snapshots")
    if not isinstance(columns, list) or not columns or columns[0] != "t_ms":
        fail(errors, 'metrics: "columns" must be a list starting with "t_ms"')
        return errors, {}
    if not isinstance(snapshots, list):
        fail(errors, 'metrics: missing "snapshots" list')
        return errors, {}

    prev_t = -1.0
    for i, row in enumerate(snapshots):
        if not isinstance(row, list) or len(row) != len(columns):
            if not fail(errors, f"metrics: snapshots[{i}] has {len(row)} values, "
                                f"expected {len(columns)}"):
                break
            continue
        t = row[0]
        if not isinstance(t, (int, float)) or t < prev_t:
            if not fail(errors, f"metrics: snapshots[{i}] time {t!r} not monotonic"):
                break
            continue
        prev_t = t

    histograms = doc.get("histograms", {})
    if not isinstance(histograms, dict):
        fail(errors, 'metrics: "histograms" is not an object')
    return errors, {"snapshots": len(snapshots), "columns": len(columns),
                    "histograms": len(histograms)}


def read_csv_rows(path, expected_header):
    """Returns (errors, rows) where rows are lists of string fields."""
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.rstrip("\n") for ln in fh if ln.strip()]
    if not lines or lines[0] != expected_header:
        fail(errors, f"header is {lines[0] if lines else '<empty>'!r}, "
                     f"expected {expected_header!r}")
        return errors, []
    n_cols = len(expected_header.split(","))
    rows = []
    for i, ln in enumerate(lines[1:], start=2):
        parts = ln.split(",")
        if len(parts) != n_cols:
            if not fail(errors, f"line {i}: {len(parts)} fields, expected {n_cols}"):
                break
            continue
        rows.append(parts)
    return errors, rows


def validate_telemetry_summary(path):
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    ledger = doc.get("ledger")
    if not isinstance(ledger, dict):
        fail(errors, 'missing "ledger" object')
        return errors, {}
    totals = {}
    for key in ("injected", "delivered", "fated", "stranded",
                "retracted_fates", "discarded_reports"):
        v = ledger.get(key)
        if not isinstance(v, int) or v < 0:
            fail(errors, f'ledger.{key} is {v!r}, expected a non-negative integer')
            return errors, {}
        totals[key] = v
    if totals["injected"] != totals["delivered"] + totals["fated"] + totals["stranded"]:
        fail(errors, f"ledger identity broken: injected {totals['injected']} != "
                     f"delivered {totals['delivered']} + fated {totals['fated']} "
                     f"+ stranded {totals['stranded']}")
    fates = ledger.get("fates")
    if not isinstance(fates, dict):
        fail(errors, 'ledger.fates is not an object')
    else:
        fate_sum = sum(v for v in fates.values() if isinstance(v, int))
        if fate_sum != totals["fated"]:
            fail(errors, f"fate taxonomy sums to {fate_sum}, ledger says "
                         f"fated {totals['fated']}")
        totals["fates"] = fates
    intd = doc.get("int", {})
    if isinstance(intd, dict):
        stamped = intd.get("stamped_deliveries", 0)
        if isinstance(stamped, int) and stamped > totals["delivered"]:
            fail(errors, f"int.stamped_deliveries {stamped} exceeds "
                         f"delivered {totals['delivered']}")
    return errors, totals


def validate_telemetry_heatmap(path):
    errors, rows = read_csv_rows(
        path, "switch_id,port,samples,qdepth_max,qdepth_mean,"
              "residence_us_max,residence_us_mean,buffer_units_max,"
              "pool_cells_max,pool_cells_mean,threshold_min,threshold_max")
    seen = set()
    for i, row in enumerate(rows, start=2):
        try:
            sw, port, samples = int(row[0]), int(row[1]), int(row[2])
            qmax, qmean = float(row[3]), float(row[4])
            rmax, rmean = float(row[5]), float(row[6])
            float(row[7])
            pool_max, pool_mean = int(row[8]), float(row[9])
            thr_min, thr_max = int(row[10]), int(row[11])
        except ValueError:
            if not fail(errors, f"line {i}: non-numeric field in {row}"):
                break
            continue
        if (sw, port) in seen:
            if not fail(errors, f"line {i}: duplicate cell ({sw}, {port})"):
                break
            continue
        seen.add((sw, port))
        if samples <= 0:
            fail(errors, f"line {i}: cell ({sw}, {port}) has {samples} samples")
        if qmean > qmax + 1e-9 or rmean > rmax + 1e-9:
            fail(errors, f"line {i}: cell ({sw}, {port}) mean exceeds max")
        if pool_mean > pool_max + 1e-9:
            fail(errors, f"line {i}: cell ({sw}, {port}) pool mean exceeds max")
        if thr_min > thr_max:
            fail(errors, f"line {i}: cell ({sw}, {port}) threshold min exceeds max")
    return errors, {"cells": len(rows)}


def validate_telemetry_fates(path, summary_totals):
    errors, rows = read_csv_rows(path, "fate,count")
    total = 0
    for i, row in enumerate(rows, start=2):
        try:
            count = int(row[1])
        except ValueError:
            if not fail(errors, f"line {i}: non-integer count {row[1]!r}"):
                break
            continue
        if count < 0:
            fail(errors, f"line {i}: negative count for {row[0]!r}")
        if row[0] in ("injected", "delivered", "stranded"):
            # Ledger-total rows appended after the fate taxonomy.
            expected = summary_totals.get(row[0]) if summary_totals else None
            if expected is not None and expected != count:
                fail(errors, f"line {i}: {row[0]} {count} != summary {expected}")
            continue
        total += count
        expected = summary_totals.get("fates", {}).get(row[0]) if summary_totals else None
        if expected is not None and expected != count:
            fail(errors, f"line {i}: fate {row[0]!r} count {count} != "
                         f"summary {expected}")
    if summary_totals and total != summary_totals.get("fated", total):
        fail(errors, f"fate counts sum to {total}, summary says "
                     f"fated {summary_totals['fated']}")
    return errors, {"fates": len(rows), "total": total}


def validate_telemetry_paths(path):
    errors, rows = read_csv_rows(
        path, "flow_id,packets,hops,multipath,path,e2e_us_mean,e2e_us_max,hop_us_mean")
    prev_flow = -1
    for i, row in enumerate(rows, start=2):
        try:
            flow, packets, hops = int(row[0]), int(row[1]), int(row[2])
            multipath = int(row[3])
            e2e_mean, e2e_max = float(row[5]), float(row[6])
        except ValueError:
            if not fail(errors, f"line {i}: non-numeric field in {row}"):
                break
            continue
        if flow <= prev_flow:
            fail(errors, f"line {i}: flow ids not strictly increasing at {flow}")
        prev_flow = flow
        if packets <= 0 or hops <= 0:
            fail(errors, f"line {i}: flow {flow} has {packets} packets, {hops} hops")
        if multipath not in (0, 1):
            fail(errors, f"line {i}: multipath flag is {multipath}")
        if row[4] and hops != len(row[4].split(">")):
            fail(errors, f"line {i}: flow {flow} claims {hops} hops but path "
                         f"is {row[4]!r}")
        if e2e_mean > e2e_max + 1e-9:
            fail(errors, f"line {i}: flow {flow} e2e mean exceeds max")
    return errors, {"flows": len(rows)}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?",
                    help="trace JSON file (obs::TraceWriter output)")
    ap.add_argument("--metrics", help="also validate a metrics JSON file")
    ap.add_argument("--min-spans", type=int, default=0,
                    help="require at least N completed spans (default 0)")
    ap.add_argument("--telemetry-summary",
                    help="validate an observatory summary JSON (ledger identity)")
    ap.add_argument("--telemetry-heatmap",
                    help="validate an observatory heatmap CSV")
    ap.add_argument("--telemetry-fates",
                    help="validate an observatory fate-taxonomy CSV")
    ap.add_argument("--telemetry-paths",
                    help="validate an observatory per-flow path CSV")
    args = ap.parse_args()
    if not args.trace and not (args.telemetry_summary or args.telemetry_heatmap
                               or args.telemetry_fates or args.telemetry_paths):
        ap.error("nothing to validate: give a trace file or --telemetry-* options")

    ok = True
    if args.trace:
        try:
            errors, stats = validate_trace(args.trace, args.min_spans)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"validate_trace: {args.trace}: {exc}", file=sys.stderr)
            return 1
        for msg in errors:
            print(f"validate_trace: {args.trace}: {msg}", file=sys.stderr)
        ok = not errors
        if ok:
            cats = ", ".join(f"{c}={n}" for c, n in sorted(stats["by_cat"].items()))
            print(f"validate_trace: {args.trace}: OK "
                  f"({stats['events']} events, {stats['spans']} spans"
                  f"{', ' + cats if cats else ''}, {stats['instants']} instants)")

    if args.metrics:
        try:
            merrors, mstats = validate_metrics(args.metrics)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"validate_trace: {args.metrics}: {exc}", file=sys.stderr)
            return 1
        for msg in merrors:
            print(f"validate_trace: {args.metrics}: {msg}", file=sys.stderr)
        if merrors:
            ok = False
        else:
            print(f"validate_trace: {args.metrics}: OK "
                  f"({mstats['snapshots']} snapshots x {mstats['columns']} columns, "
                  f"{mstats['histograms']} histograms)")

    summary_totals = {}
    telemetry_jobs = [
        (args.telemetry_summary, validate_telemetry_summary, "summary"),
        (args.telemetry_heatmap, validate_telemetry_heatmap, "heatmap"),
        (args.telemetry_fates,
         lambda p: validate_telemetry_fates(p, summary_totals), "fates"),
        (args.telemetry_paths, validate_telemetry_paths, "paths"),
    ]
    for path, validator, kind in telemetry_jobs:
        if not path:
            continue
        try:
            terrors, tstats = validator(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"validate_trace: {path}: {exc}", file=sys.stderr)
            return 1
        for msg in terrors:
            print(f"validate_trace: {path}: {msg}", file=sys.stderr)
        if terrors:
            ok = False
            continue
        if kind == "summary":
            summary_totals = tstats
            print(f"validate_trace: {path}: OK (ledger closes: "
                  f"{tstats['injected']} injected = {tstats['delivered']} delivered "
                  f"+ {tstats['fated']} fated + {tstats['stranded']} stranded)")
        else:
            detail = ", ".join(f"{k}={v}" for k, v in tstats.items())
            print(f"validate_trace: {path}: OK ({detail})")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
